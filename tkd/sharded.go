package tkd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/shard"
)

// ShardMetrics is a snapshot of a sharded dataset's scatter-gather counters:
// fan-out calls, τ push-down prunes, retries, hedges, degraded answers and
// per-shard latency histograms.
type ShardMetrics = shard.Snapshot

// ShardPolicy tunes a sharded dataset's fault tolerance: retry attempts and
// backoff, hedging, attempt timeouts and circuit-breaker thresholds. See
// shard.Policy for the fields.
type ShardPolicy = shard.Policy

// BreakerState is a replica circuit breaker's position (closed, open or
// half-open).
type BreakerState = shard.BreakerState

// DefaultShardPolicy returns the serving defaults (3 attempts, 5ms..250ms
// jittered backoff, hedging on observed p99, breakers opening after 5
// consecutive failures for 1s).
func DefaultShardPolicy() ShardPolicy { return shard.DefaultPolicy() }

// ShardOption configures Shard.
type ShardOption func(*shardConfig)

type shardConfig struct {
	shards         int
	peers          [][]string // replica URL groups; shard i → peers[i % len]
	client         *http.Client
	policy         ShardPolicy
	policySet      bool
	healthInterval time.Duration
	peerTimeout    time.Duration
}

// WithShards splits the dataset into n row-range shards (default 2, minimum
// 1 — a one-shard "sharded" dataset is valid and useful for crosschecks).
func WithShards(n int) ShardOption {
	return func(c *shardConfig) { c.shards = n }
}

// WithShardPeers serves the shards from remote tkdserver peers instead of
// in-process: shard i goes to urls[i % len(urls)]. Each entry is one
// shard's replica set — either a single base URL or several separated by
// '|' ("http://a:8080|http://b:8080"), in which case the shard's reads
// load-balance across the replicas with per-replica circuit breakers,
// retries and optional hedging (see WithShardPolicy). Every peer must have
// the same dataset registered under the same name the coordinator uses —
// peers verify a per-shard content fingerprint on every call, so a
// divergent replica fails (and is quarantined) instead of corrupting the
// merge.
func WithShardPeers(urls ...string) ShardOption {
	return func(c *shardConfig) {
		c.peers = c.peers[:0]
		for _, u := range urls {
			var group []string
			for _, r := range strings.Split(u, "|") {
				if r = strings.TrimSpace(r); r != "" {
					group = append(group, r)
				}
			}
			if len(group) > 0 {
				c.peers = append(c.peers, group)
			}
		}
	}
}

// WithShardClient overrides the HTTP client used to reach peers.
func WithShardClient(client *http.Client) ShardOption {
	return func(c *shardConfig) { c.client = client }
}

// WithShardPolicy overrides the fault-tolerance policy applied to every
// shard's replica set (default DefaultShardPolicy).
func WithShardPolicy(p ShardPolicy) ShardOption {
	return func(c *shardConfig) { c.policy, c.policySet = p, true }
}

// WithShardHealthChecks starts a background health probe per shard replica
// set, every interval: replicas whose fingerprint diverges from the
// coordinator's expectation are quarantined (breaker tripped) until they
// catch up, without spending query attempts discovering it. 0 (the
// default) disables the probes. Call Close to stop them.
func WithShardHealthChecks(interval time.Duration) ShardOption {
	return func(c *shardConfig) { c.healthInterval = interval }
}

// WithShardPeerTimeout bounds one peer round trip when no WithShardClient
// was given (default shard.DefaultRemoteTimeout, 30s). Per-query deadlines
// via WithContext apply on top, per call.
func WithShardPeerTimeout(d time.Duration) ShardOption {
	return func(c *shardConfig) { c.peerTimeout = d }
}

// ShardedDataset serves TKD queries over one dataset split into N row-range
// shards behind a scatter-gather coordinator. Each shard is an independent
// slice of the published epoch with its own binned bitmap index and column
// cache — servable in-process or by a remote tkdserver peer — while the
// coordinator keeps the full data and the global MaxScore queue. Answers
// are byte-identical to the unsharded dataset's for every algorithm: the
// coordinator replays the serial offer sequence with exact summed partial
// scores, pruning across shards with the pushed-down global τ (see package
// repro/internal/shard for the protocol).
//
// The wrapped Dataset remains the mutation surface: Append, Negate and
// ReplaceFrom publish epochs exactly as before, and the shard set follows —
// a query that observes a new epoch rebuilds the slices (and their indexes)
// before running. Queries in flight keep the shard set they started with;
// nobody blocks anybody, mirroring the single-process epoch/RCU contract.
type ShardedDataset struct {
	src            *Dataset
	name           string // dataset name on peers (remote topologies)
	n              int
	peers          [][]string
	client         *http.Client
	policy         ShardPolicy
	healthInterval time.Duration
	met            *shard.Metrics

	mu  sync.Mutex
	cur atomic.Pointer[shardSet]

	cacheBudget atomic.Int64
}

// shardSet is one epoch's worth of shard topology: the frozen data, the
// coordinator over it, and one swappable slot per shard.
type shardSet struct {
	epoch uint64
	data  *data.Dataset
	coord *shard.Coordinator
	from  []int // shard i covers rows [from[i], from[i+1])
	slots []atomic.Pointer[backendBox]
}

// close stops every slot's background machinery (replica-set health
// loops). Queries in flight on the set keep working — close only retires
// goroutines.
func (s *shardSet) close() {
	for i := range s.slots {
		if rs, ok := s.slots[i].Load().b.(*shard.ReplicaSet); ok {
			rs.Close()
		}
	}
}

// backendBox boxes the Backend interface value for atomic swapping
// (individual shard reloads replace one box while queries hold the old one).
type backendBox struct{ b shard.Backend }

// backends snapshots the current backend of every slot.
func (s *shardSet) backends() []shard.Backend {
	out := make([]shard.Backend, len(s.slots))
	for i := range s.slots {
		out[i] = s.slots[i].Load().b
	}
	return out
}

// Shard wraps src in a scatter-gather coordinator. name is the dataset's
// registry name on remote peers (ignored for in-process shards, but always
// recorded so a topology can add peers later). The source dataset is shared,
// not copied: mutations through src publish epochs the sharded view follows.
func Shard(src *Dataset, name string, opts ...ShardOption) (*ShardedDataset, error) {
	cfg := shardConfig{shards: 2, policy: DefaultShardPolicy()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 1 {
		return nil, fmt.Errorf("tkd: shard count must be >= 1, got %d", cfg.shards)
	}
	if cfg.client == nil && len(cfg.peers) > 0 && cfg.peerTimeout > 0 {
		cfg.client = &http.Client{Timeout: cfg.peerTimeout}
	}
	return &ShardedDataset{
		src:            src,
		name:           name,
		n:              cfg.shards,
		peers:          cfg.peers,
		client:         cfg.client,
		policy:         cfg.policy,
		healthInterval: cfg.healthInterval,
		met:            shard.NewMetrics(cfg.shards),
	}, nil
}

// Source returns the wrapped dataset — the mutation surface.
func (sd *ShardedDataset) Source() *Dataset { return sd.src }

// ShardCount returns N.
func (sd *ShardedDataset) ShardCount() int { return sd.n }

// set resolves the shard set for the source's current epoch, building it
// (slices, backends, coordinator) when a mutation published a new one.
// Builds happen under the mutex; concurrent queries on the old epoch keep
// their set.
func (sd *ShardedDataset) set() *shardSet {
	s := sd.src.current()
	if cs := sd.cur.Load(); cs != nil && cs.epoch == s.epoch {
		return cs
	}
	sd.mu.Lock()
	defer sd.mu.Unlock()
	s = sd.src.current()
	if cs := sd.cur.Load(); cs != nil && cs.epoch == s.epoch {
		return cs
	}
	// The global MaxScore queue is the coordinator-side artifact; ensure it
	// on the source snapshot so unsharded queries on the same Dataset share
	// the build.
	queue := s.ensure(needQueue, sd.src).queue
	ds := s.ds
	n := sd.n
	ns := &shardSet{
		epoch: s.epoch,
		data:  ds,
		coord: shard.NewCoordinator(ds, queue, sd.met),
		from:  make([]int, n+1),
		slots: make([]atomic.Pointer[backendBox], n),
	}
	budget := sd.perShardBudget()
	for i := 0; i < n; i++ {
		lo, hi := i*ds.Len()/n, (i+1)*ds.Len()/n
		ns.from[i], ns.from[i+1] = lo, hi
		ns.slots[i].Store(&backendBox{b: sd.buildBackend(ds, i, lo, hi, budget)})
	}
	old := sd.cur.Load()
	sd.cur.Store(ns)
	if old != nil {
		// Retire the old epoch's health loops; in-flight queries on the old
		// set are unaffected (close never touches the query path).
		old.close()
	}
	return ns
}

// buildBackend constructs shard i over rows [lo, hi): an in-process Local,
// or a replica set of Remotes pointing at the peer group the shard is
// assigned to (retry/hedge/breaker semantics apply even to a single-peer
// group — one replica is just the degenerate set).
func (sd *ShardedDataset) buildBackend(ds *data.Dataset, i, lo, hi int, budget int64) shard.Backend {
	slice := ds.Slice(lo, hi)
	if len(sd.peers) == 0 {
		l := shard.NewLocal(slice)
		if budget > 0 {
			l.SetCacheBudget(budget)
		}
		return l
	}
	group := sd.peers[i%len(sd.peers)]
	fp := slice.Fingerprint()
	replicas := make([]shard.Backend, len(group))
	for r, u := range group {
		replicas[r] = shard.NewRemote(sd.client, u, sd.name, lo, hi, fp)
	}
	rs, err := shard.NewReplicaSet(i, replicas, sd.policy, sd.met)
	if err != nil {
		// Unreachable: all replicas were built from the same slice identity.
		return replicas[0]
	}
	rs.StartHealthChecks(sd.healthInterval)
	return rs
}

// perShardBudget splits the dataset-level cache budget evenly.
func (sd *ShardedDataset) perShardBudget() int64 {
	b := sd.cacheBudget.Load()
	if b <= 0 {
		return 0
	}
	return max(b/int64(sd.n), 1)
}

// ReloadShard rebuilds shard i's backend — fresh slice handle, fresh
// indexes — and swaps it in atomically. Queries in flight keep the backend
// they captured; queries that start after the swap see the new one. It is
// the per-shard maintenance primitive (e.g. re-pick representations after a
// cache-budget change) and the unit the race tests hammer. Remote shards
// have no coordinator-side state to rebuild beyond the handle itself.
func (sd *ShardedDataset) ReloadShard(i int) error {
	s := sd.set()
	if i < 0 || i >= len(s.slots) {
		return fmt.Errorf("tkd: shard %d out of range [0,%d)", i, len(s.slots))
	}
	old := s.slots[i].Swap(&backendBox{b: sd.buildBackend(s.data, i, s.from[i], s.from[i+1], sd.perShardBudget())})
	if rs, ok := old.b.(*shard.ReplicaSet); ok {
		rs.Close()
	}
	return nil
}

// TopK answers the TKD query through the shard fan-out; same options, same
// answers — byte-identical to the unsharded Dataset — different topology.
// WithWorkers is accepted and ignored: the fan-out across shards is the
// parallelism. WithBins is likewise ignored (each shard bins its own slice
// by Eq. (8); bin layout never changes answers). WithBTreeRefinement maps
// to the IBIG scatter plan — refinement strategy is a shard-local detail
// that cannot change answers either.
func (sd *ShardedDataset) TopK(k int, opts ...Option) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("tkd: k must be positive, got %d", k)
	}
	cfg := queryConfig{alg: IBIG, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s := sd.set()
	if s.data.Len() == 0 {
		return Result{}, fmt.Errorf("tkd: empty dataset")
	}
	// The engine span wraps the whole scatter-gather run; the coordinator
	// reads it back out of the context for its window spans and τ samples.
	eng := cfg.engineSpan(k, s.data.Len())
	eng.SetInt("shards", int64(sd.n))
	if eng != nil {
		ctx = obs.ContextWithSpan(ctx, eng)
	}
	var outcome shard.Outcome
	res, st, err := s.coord.Run(ctx, cfg.alg, k, s.backends(),
		shard.RunOptions{AllowPartial: cfg.allowPartial, Outcome: &outcome})
	if err != nil {
		eng.SetStr("error", err.Error())
		eng.End()
		return Result{}, err
	}
	stampStats(eng, st)
	if outcome.Degraded {
		eng.SetInt("degraded", 1)
		eng.SetInt("covered_rows", int64(outcome.CoveredRows))
	}
	eng.End()
	if cfg.stats != nil {
		*cfg.stats = st
	}
	if cfg.degradation != nil {
		*cfg.degradation = Degradation{
			Degraded:    outcome.Degraded,
			CoveredRows: outcome.CoveredRows,
			TotalRows:   outcome.TotalRows,
			DownShards:  outcome.DownShards,
		}
	}
	return res, nil
}

// Prepare eagerly builds every shard's serving artifacts (the per-shard
// binned indexes) plus the coordinator's global queue, in parallel across
// shards.
func (sd *ShardedDataset) Prepare() { sd.PrepareFor(IBIG) }

// PrepareFor eagerly builds the artifacts the given algorithms' scatter
// plans consume on each in-process shard (remote shards warm on their
// peers, on first use).
func (sd *ShardedDataset) PrepareFor(algs ...Algorithm) {
	s := sd.set()
	var wg sync.WaitGroup
	for _, box := range s.backends() {
		l, ok := box.(*shard.Local)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(l *shard.Local) {
			defer wg.Done()
			for _, a := range algs {
				l.Prewarm(a)
			}
		}(l)
	}
	wg.Wait()
}

// Metrics snapshots the scatter-gather counters (fan-out, τ push-downs,
// retries, hedges, degraded answers, per-shard latency histograms).
// Counters survive epoch swaps and shard reloads.
func (sd *ShardedDataset) Metrics() ShardMetrics { return sd.met.Snapshot() }

// ReplicaStates snapshots every shard's replica breaker states, in shard
// order: nil for a shard not served by a replica set (in-process Locals),
// one BreakerState per replica otherwise. The serving layer renders these
// as the tkd_shard_breaker_state / tkd_shard_replicas_healthy gauges.
func (sd *ShardedDataset) ReplicaStates() [][]BreakerState {
	s := sd.cur.Load()
	if s == nil {
		return nil
	}
	out := make([][]BreakerState, len(s.slots))
	for i := range s.slots {
		if rs, ok := s.slots[i].Load().b.(*shard.ReplicaSet); ok {
			out[i] = rs.States()
		}
	}
	return out
}

// Close stops the background machinery (replica health-check loops) of the
// current shard set. Queries keep working; call it when retiring the
// dataset so the goroutines do not outlive it.
func (sd *ShardedDataset) Close() {
	if s := sd.cur.Load(); s != nil {
		s.close()
	}
}

// ---- the Dataset query surface, for the serving layer ----

// Len returns the number of objects; Dim the dimensionality.
func (sd *ShardedDataset) Len() int { return sd.src.Len() }

// Dim returns the dataset dimensionality.
func (sd *ShardedDataset) Dim() int { return sd.src.Dim() }

// MissingRate returns the fraction of missing cells.
func (sd *ShardedDataset) MissingRate() float64 { return sd.src.MissingRate() }

// Epoch returns the source dataset's epoch counter.
func (sd *ShardedDataset) Epoch() uint64 { return sd.src.Epoch() }

// Fingerprint digests the full dataset contents.
func (sd *ShardedDataset) Fingerprint() uint64 { return sd.src.Fingerprint() }

// ReplaceFrom hot-swaps the underlying data (see Dataset.ReplaceFrom). The
// shard set rebuilds lazily: the first query on the new epoch slices and
// indexes it; queries still in flight finish on the old shard set.
func (sd *ShardedDataset) ReplaceFrom(src *Dataset) {
	old := sd.cur.Load()
	sd.src.ReplaceFrom(src)
	sd.releaseRetired(old)
}

// ReplaceFromAt is ReplaceFrom with an externally assigned epoch number (see
// Dataset.ReplaceFromAt) — a replication follower serving a sharded resident
// publishes the leader's epoch through it.
func (sd *ShardedDataset) ReplaceFromAt(src *Dataset, epoch uint64) {
	old := sd.cur.Load()
	sd.src.ReplaceFromAt(src, epoch)
	sd.releaseRetired(old)
}

// releaseRetired drops the retired shard set's decompressed-column caches so
// a swap returns its budget immediately.
func (sd *ShardedDataset) releaseRetired(old *shardSet) {
	if old == nil {
		return
	}
	for i := range old.slots {
		if l, ok := old.slots[i].Load().b.(*shard.Local); ok {
			l.ReleaseCache()
		}
	}
}

// SetCacheBudget bounds the decompressed-column caches across all shards to
// bytes in total (split evenly).
func (sd *ShardedDataset) SetCacheBudget(bytes int64) {
	sd.cacheBudget.Store(bytes)
	if s := sd.cur.Load(); s != nil {
		per := sd.perShardBudget()
		for i := range s.slots {
			if l, ok := s.slots[i].Load().b.(*shard.Local); ok && per > 0 {
				l.SetCacheBudget(per)
			}
		}
	}
}

// CacheStats aggregates the per-shard column-cache and representation
// counters.
func (sd *ShardedDataset) CacheStats() CacheStats {
	s := sd.cur.Load()
	if s == nil {
		return CacheStats{}
	}
	var out CacheStats
	for i := range s.slots {
		l, ok := s.slots[i].Load().b.(*shard.Local)
		if !ok {
			continue
		}
		st := l.CacheStats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evicted += st.Evicted
		out.Bytes += st.Bytes
		out.Budget += st.Budget
		out.DenseCols += st.DenseCols
		out.CompressedCols += st.CompressedCols
		out.SparseCols += st.SparseCols
		out.NativeKernel += st.NativeKernel
		out.Fallback += st.Fallback
	}
	return out
}

// ReleaseCache drops every shard's decompressed-column cache.
func (sd *ShardedDataset) ReleaseCache() {
	if s := sd.cur.Load(); s != nil {
		for i := range s.slots {
			if l, ok := s.slots[i].Load().b.(*shard.Local); ok {
				l.ReleaseCache()
			}
		}
	}
}

// IndexBuilds sums the shards' from-scratch index constructions — the warm
// restart observable: a restart that loads every persisted shard index
// reports zero new builds.
func (sd *ShardedDataset) IndexBuilds() int64 {
	s := sd.cur.Load()
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.slots {
		if l, ok := s.slots[i].Load().b.(*shard.Local); ok {
			n += l.Builds()
		}
	}
	return n
}

// ShardFingerprint returns shard i's slice fingerprint — the key of its
// persisted index file.
func (sd *ShardedDataset) ShardFingerprint(i int) (uint64, error) {
	s := sd.set()
	if i < 0 || i >= len(s.slots) {
		return 0, fmt.Errorf("tkd: shard %d out of range [0,%d)", i, len(s.slots))
	}
	return s.slots[i].Load().b.Fingerprint(), nil
}

// SaveShardIndex serializes shard i's binned index (building it first if
// needed) so a warm restart can skip that shard's rebuild. Remote shards
// persist on their peers; saving one here is an error.
func (sd *ShardedDataset) SaveShardIndex(i int, w io.Writer) error {
	l, err := sd.localShard(i)
	if err != nil {
		return err
	}
	return l.SaveIndex(w)
}

// LoadShardIndex restores shard i's persisted index. The stream is
// validated against the shard's slice (including its fingerprint); on any
// error the shard is unchanged and rebuilds lazily.
func (sd *ShardedDataset) LoadShardIndex(i int, r io.Reader) error {
	l, err := sd.localShard(i)
	if err != nil {
		return err
	}
	return l.LoadIndex(r)
}

// ShardIsLocal reports whether shard i runs in-process (remote shards
// persist their indexes on their peers, not here).
func (sd *ShardedDataset) ShardIsLocal(i int) bool {
	_, err := sd.localShard(i)
	return err == nil
}

// ShardRows returns shard i's row count. A zero-row shard (more shards
// than rows) has no index to persist or warm.
func (sd *ShardedDataset) ShardRows(i int) (int, error) {
	s := sd.set()
	if i < 0 || i >= len(s.slots) {
		return 0, fmt.Errorf("tkd: shard %d out of range [0,%d)", i, len(s.slots))
	}
	return s.slots[i].Load().b.Rows(), nil
}

func (sd *ShardedDataset) localShard(i int) (*shard.Local, error) {
	s := sd.set()
	if i < 0 || i >= len(s.slots) {
		return nil, fmt.Errorf("tkd: shard %d out of range [0,%d)", i, len(s.slots))
	}
	l, ok := s.slots[i].Load().b.(*shard.Local)
	if !ok {
		return nil, fmt.Errorf("tkd: shard %d is remote", i)
	}
	return l, nil
}
