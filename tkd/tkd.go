// Package tkd is the public API of the library: top-k dominating (TKD)
// queries over incomplete multi-dimensional data, implementing the
// algorithms of Miao, Gao, Zheng, Chen and Cui, "Top-k Dominating Queries
// on Incomplete Data" (IEEE TKDE 28(1), 2016).
//
// A TKD query returns the k objects that dominate the most other objects.
// On incomplete data, dominance is decided on the common observed
// dimensions only (smaller is better): o dominates p if o ≤ p wherever both
// are observed and o < p somewhere. The library ships the paper's five
// algorithms — Naive, ESB, UBB, BIG and IBIG — behind one entry point:
//
//	ds := tkd.NewDataset(4)
//	ds.Append("a", 1, 2, tkd.Missing, 4)
//	ds.Append("b", 2, tkd.Missing, 3, 5)
//	res, err := ds.TopK(2)                         // picks IBIG
//	res, err = ds.TopK(2, tkd.WithAlgorithm(tkd.UBB))
//
// Preprocessing artifacts (the MaxScore queue of §4.2 and the bitmap
// indexes of §4.3–4.4) are built lazily on first use and cached until the
// dataset changes; call Prepare to pay the cost up front.
//
// Queries are serial by default; WithWorkers(n) fans candidate scoring
// across a worker pool (0 = GOMAXPROCS) without changing the answer:
//
//	res, err = ds.TopK(2, tkd.WithWorkers(0))      // parallel IBIG
package tkd

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gen"
	"repro/internal/impute"
	"repro/internal/skyband"
)

// Missing marks an unobserved value in Append calls.
var Missing = math.NaN()

// MaxDim is the largest supported dimensionality.
const MaxDim = data.MaxDim

// Algorithm selects a query algorithm.
type Algorithm = core.Algorithm

// The five algorithms of the paper, in presentation order.
const (
	Naive = core.AlgNaive // exhaustive pairwise scoring (§4.1 baseline)
	ESB   = core.AlgESB   // extended skyband based, Algorithm 1
	UBB   = core.AlgUBB   // upper bound based, Algorithm 2
	BIG   = core.AlgBIG   // bitmap index guided, Algorithm 4
	IBIG  = core.AlgIBIG  // improved BIG, §4.4 (default)
)

// Item is one answer object; Result is the ranked answer set.
type (
	Item   = core.Item
	Result = core.Result
	// Stats exposes per-query work counters, including the number of
	// objects pruned by each of the paper's three heuristics.
	Stats = core.Stats
)

// Dataset is an incomplete dataset plus cached query acceleration state.
//
// Concurrency: concurrent TopK (and the other read-only queries) on one
// Dataset are safe — the lazy index construction is mutex-guarded and the
// built artifacts are immutable, so a server can share one warm Dataset
// across many request goroutines. Mutations (Append, Negate, LoadIndex) must
// not race with queries; they are for the load phase.
type Dataset struct {
	ds *data.Dataset

	// mu guards the lazily built acceleration state below. Queries snapshot
	// the artifacts they need under the lock and run on the immutable
	// snapshot outside it.
	mu          sync.Mutex
	pre         *core.Pre
	bins        []int
	trees       []*btree.Tree // per-dimension trees for WithBTreeRefinement
	cacheBudget int64         // SetCacheBudget value; 0 = bitmapidx default
}

// NewDataset returns an empty dataset with the given dimensionality
// (1..MaxDim). Smaller values are better; use Negate for rating-style data.
func NewDataset(dim int) *Dataset {
	return &Dataset{ds: data.New(dim)}
}

// wrap adopts an internal dataset.
func wrap(ds *data.Dataset) *Dataset { return &Dataset{ds: ds} }

// Append adds one object; use Missing for unobserved dimensions. Objects
// must have at least one observed value.
func (d *Dataset) Append(id string, values ...float64) error {
	_, err := d.ds.Append(id, values)
	d.mu.Lock()
	d.pre = nil // invalidate cached indexes
	d.trees = nil
	d.mu.Unlock()
	return err
}

// Len returns the number of objects; Dim the dimensionality.
func (d *Dataset) Len() int { return d.ds.Len() }

// Dim returns the dataset dimensionality.
func (d *Dataset) Dim() int { return d.ds.Dim() }

// MissingRate returns the fraction of missing cells (the paper's σ).
func (d *Dataset) MissingRate() float64 { return d.ds.MissingRate() }

// Negate flips every observed value's sign, converting larger-is-better
// data to the library's smaller-is-better convention. Cached indexes are
// invalidated.
func (d *Dataset) Negate() {
	d.ds.Negate()
	d.mu.Lock()
	d.pre = nil
	d.trees = nil
	d.mu.Unlock()
}

// ID returns the identifier of the i-th object.
func (d *Dataset) ID(i int) string { return d.ds.Obj(i).ID }

// Value returns the i-th object's value in dimension dim and whether it is
// observed.
func (d *Dataset) Value(i, dim int) (float64, bool) {
	o := d.ds.Obj(i)
	if !o.Observed(dim) {
		return 0, false
	}
	return o.Values[dim], true
}

// Dominates reports whether object i dominates object j under the
// incomplete-data dominance relation (Definition 1 of the paper).
func (d *Dataset) Dominates(i, j int) bool {
	return core.Dominates(d.ds.Obj(i), d.ds.Obj(j))
}

// Score returns score(i): how many objects i dominates (Definition 2).
func (d *Dataset) Score(i int) int { return core.Score(d.ds, i) }

// Option configures TopK.
type Option func(*queryConfig)

type queryConfig struct {
	alg     Algorithm
	algSet  bool
	bins    []int
	stats   *Stats
	btree   bool
	workers int
}

// WithAlgorithm forces a specific algorithm (default IBIG).
func WithAlgorithm(a Algorithm) Option {
	return func(c *queryConfig) { c.alg, c.algSet = a, true }
}

// WithBins overrides the bin counts of the binned bitmap index used by
// IBIG: one entry per dimension, or a single entry broadcast to all. The
// default is the paper's space×time optimum, Eq. (8); calling WithBins with
// no arguments keeps that default rather than requesting an empty layout.
func WithBins(bins ...int) Option {
	return func(c *queryConfig) {
		if len(bins) == 0 {
			// No counts given: leave the Eq. (8) default in force instead of
			// handing the index builder an empty (and formerly panicking)
			// bin list.
			return
		}
		c.bins = bins
	}
}

// WithWorkers fans candidate scoring across n goroutines: 0 selects
// GOMAXPROCS, 1 (the default) is the serial path. UBB, BIG, IBIG and the
// B+-tree refinement run through the batch-windowed parallel engine; Naive
// through the sharded exhaustive scorer; ESB fans its per-bucket skyband
// queries across the pool and scores the survivors through the engine.
//
// Determinism: a parallel query returns the same answer set — identical
// objects, ranks and scores — as the serial run over the same dataset.
// Rank-k ties are broken arbitrarily but identically in both paths (worker
// results are committed to the answer heap in queue order, replaying the
// serial heap's offer sequence exactly), so WithWorkers never changes a
// query's answer, only its wall-clock time.
func WithWorkers(n int) Option {
	return func(c *queryConfig) { c.workers = n }
}

// WithStats captures the query's work counters into st.
func WithStats(st *Stats) Option {
	return func(c *queryConfig) { c.stats = st }
}

// WithBTreeRefinement switches IBIG to the B+-tree-backed Q−P refinement of
// the paper's §4.5 implementation note (one B+-tree per dimension scans
// only the keys inside the candidate's bin). Ignored for other algorithms.
func WithBTreeRefinement() Option {
	return func(c *queryConfig) { c.btree = true }
}

// Prepare eagerly builds the preprocessing artifacts (MaxScore queue,
// bitmap index, binned bitmap index) so that subsequent TopK calls measure
// pure query time. It is idempotent and safe to call concurrently.
func (d *Dataset) Prepare() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pre == nil {
		d.pre = &core.Pre{}
	}
	// Fill in only what is missing, preserving artifacts installed by
	// earlier queries or LoadIndex.
	d.ensureQueueLocked()
	stats := d.ds.Stats()
	if d.pre.Bitmap == nil {
		d.pre.Bitmap = bitmapidx.BuildWithStats(d.ds, stats, bitmapidx.Options{Codec: bitmapidx.Raw})
	}
	if d.pre.Binned == nil {
		bins := d.bins
		if bins == nil {
			bins = []int{core.OptimalBins(d.ds.Len(), d.ds.MissingRate())}
		}
		d.pre.Binned = bitmapidx.BuildWithStats(d.ds, stats, bitmapidx.Options{Codec: bitmapidx.Concise, Bins: bins})
		d.applyCacheBudgetLocked()
	}
}

// SetCacheBudget bounds the decompressed-column cache of the compressed
// bitmap index to at most bytes (0 restores the bitmapidx default), taking
// effect immediately on an already-built index. Long-lived servers use this
// together with CacheStats to size the per-dataset memory footprint.
func (d *Dataset) SetCacheBudget(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cacheBudget = bytes
	d.applyCacheBudgetLocked()
}

// applyCacheBudgetLocked pushes the configured budget onto any compressed
// index already built; 0 restores the bitmapidx default. Callers hold d.mu.
func (d *Dataset) applyCacheBudgetLocked() {
	if d.pre == nil || d.pre.Binned == nil {
		return
	}
	budget := d.cacheBudget
	if budget <= 0 {
		budget = bitmapidx.DefaultCacheBudget
	}
	d.pre.Binned.SetCacheBudget(budget)
}

// CacheStats reports the decompressed-column cache counters of the
// compressed bitmap index: lookup hits and misses, columns evicted by the
// CLOCK policy, resident bytes and the configured budget. All zero until an
// IBIG query (or Prepare) builds the index.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Evicted int64
	Bytes   int64
	Budget  int64
}

// CacheStats snapshots the column-cache counters; see the CacheStats type.
func (d *Dataset) CacheStats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pre == nil || d.pre.Binned == nil {
		return CacheStats{}
	}
	st := d.pre.Binned.CacheStats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Evicted: st.Evicted, Bytes: st.Bytes, Budget: st.Budget}
}

// ensure builds, under the lock, every preprocessing artifact the configured
// query needs, and returns an immutable snapshot for the query to run on.
// RunWorkers never mutates a Pre whose artifacts are present, so concurrent
// TopK calls race neither on construction nor on use.
func (d *Dataset) ensure(cfg *queryConfig) (*core.Pre, []*btree.Tree) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg.bins != nil {
		// A custom bin layout invalidates any cached binned index. In-flight
		// queries keep the Pre snapshot they already took.
		if d.pre != nil {
			d.pre = &core.Pre{Queue: d.pre.Queue, Bitmap: d.pre.Bitmap}
		}
		d.bins = cfg.bins
	}
	if d.pre == nil {
		d.pre = &core.Pre{}
	}
	switch cfg.alg {
	case UBB:
		d.ensureQueueLocked()
	case BIG:
		d.ensureQueueLocked()
		if d.pre.Bitmap == nil {
			d.pre.Bitmap = bitmapidx.Build(d.ds, bitmapidx.Options{Codec: bitmapidx.Raw})
		}
	case IBIG:
		d.ensureQueueLocked()
		if d.pre.Binned == nil {
			bins := d.bins
			if bins == nil {
				bins = []int{core.OptimalBins(d.ds.Len(), d.ds.MissingRate())}
			}
			d.pre.Binned = bitmapidx.Build(d.ds, bitmapidx.Options{Codec: bitmapidx.Concise, Bins: bins})
			d.applyCacheBudgetLocked()
		}
		if cfg.btree && d.trees == nil {
			d.trees = core.BuildDimTrees(d.ds)
		}
	}
	return d.pre, d.trees
}

func (d *Dataset) ensureQueueLocked() {
	if d.pre.Queue == nil {
		d.pre.Queue = core.BuildMaxScoreQueue(d.ds)
	}
}

// TopK answers the TKD query: the k objects with the highest scores, in
// descending score order. Rank-k ties are broken arbitrarily, as in the
// paper. Safe for concurrent use: any number of goroutines may query one
// Dataset, sharing its warm indexes and column cache.
func (d *Dataset) TopK(k int, opts ...Option) (Result, error) {
	if d.ds.Len() == 0 {
		return Result{}, fmt.Errorf("tkd: empty dataset")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("tkd: k must be positive, got %d", k)
	}
	cfg := queryConfig{alg: IBIG, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	pre, trees := d.ensure(&cfg)
	var res Result
	var st Stats
	if cfg.alg == IBIG && cfg.btree {
		res, st = core.IBIGBTreeWorkers(d.ds, k, pre.Binned, pre.Queue, trees, cfg.workers)
	} else {
		res, st = core.RunWorkers(cfg.alg, d.ds, k, pre, cfg.workers)
	}
	if cfg.stats != nil {
		*cfg.stats = st
	}
	return res, nil
}

// Project returns a new dataset restricted to the given dimensions, in the
// given order — subspace dominating queries (a TKD variant the paper
// surveys in §2.1) are TopK calls on the projection. Objects that lose all
// observed values are dropped; the returned slice maps each projected
// object back to its index in the receiver.
func (d *Dataset) Project(dims ...int) (*Dataset, []int, error) {
	sub, origin, err := d.ds.Project(dims)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int, len(origin))
	for i, o := range origin {
		out[i] = int(o)
	}
	return wrap(sub), out, nil
}

// SaveIndex builds (if necessary) and serializes the IBIG binned bitmap
// index, the dominant preprocessing artifact. LoadIndex restores it against
// the same dataset, skipping the rebuild.
func (d *Dataset) SaveIndex(w io.Writer) error {
	d.mu.Lock()
	if d.pre == nil || d.pre.Binned == nil {
		bins := d.bins
		if bins == nil {
			bins = []int{core.OptimalBins(d.ds.Len(), d.ds.MissingRate())}
		}
		if d.pre == nil {
			d.pre = &core.Pre{}
		}
		d.pre.Binned = bitmapidx.Build(d.ds, bitmapidx.Options{Codec: bitmapidx.Concise, Bins: bins})
		d.applyCacheBudgetLocked()
	}
	ix := d.pre.Binned
	d.mu.Unlock()
	return ix.Save(w)
}

// LoadIndex restores an index written by SaveIndex. The dataset must be
// identical to the one the index was built from; shape and per-dimension
// domains are verified and the stream is checksummed.
func (d *Dataset) LoadIndex(r io.Reader) error {
	ix, err := bitmapidx.Load(r, d.ds)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if d.pre == nil {
		d.pre = &core.Pre{}
	}
	d.pre.Binned = ix
	d.applyCacheBudgetLocked()
	d.mu.Unlock()
	return nil
}

// KSkyband returns the dataset indices of the objects dominated by fewer
// than k others — the kISB operator over incomplete data that ESB's pruning
// is built on (§4.1/Lemma 1 of the paper). Results preserve dataset order.
func (d *Dataset) KSkyband(k int) []int {
	ids := skyband.GlobalKSkyband(d.ds, k)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Skyline returns the incomplete-data skyline: the objects no other object
// dominates (the 1-skyband).
func (d *Dataset) Skyline() []int { return d.KSkyband(1) }

// TopKMFD answers the TKD query under the MFD-weighted scoring extension of
// §3: each dominance o ≺ p earns weight Σ_{both observed} w_i +
// λ·Σ_{one observed} w_j, and objects are ranked by accumulated weight.
func (d *Dataset) TopKMFD(k int, weights []float64, lambda float64) ([]core.WeightedItem, error) {
	return core.TopKMFD(d.ds, k, core.MFD{Weights: weights, Lambda: lambda})
}

// Impute returns a complete copy of the dataset with missing cells
// predicted by SGD matrix factorization (the Table 4 baseline): factors
// latent dimensions, iters sweeps. Pass factors, iters <= 0 for the paper's
// defaults (8 factors, 50 iterations).
func (d *Dataset) Impute(factors, iters int, seed int64) *Dataset {
	cfg := impute.DefaultConfig(seed)
	if factors > 0 {
		cfg.Factors = factors
	}
	if iters > 0 {
		cfg.Iterations = iters
	}
	return wrap(impute.Impute(d.ds, cfg))
}

// JaccardDistance measures answer-set dissimilarity by object ID, the
// Table 4 metric.
func JaccardDistance(a, b Result) float64 {
	return impute.JaccardDistance(a.IDs(), b.IDs())
}

// OptimalBins evaluates the paper's Eq. (8): the bin count that optimizes
// the space×time product for a dataset of n objects with missing rate
// sigma.
func OptimalBins(n int, sigma float64) int { return core.OptimalBins(n, sigma) }

// WriteCSV serializes the dataset ("-" marks missing values).
func (d *Dataset) WriteCSV(w io.Writer) error { return d.ds.WriteCSV(w) }

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds, err := data.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return wrap(ds), nil
}

// ---- Workload generation (the paper's §5 datasets) ----

// GenerateIND returns a synthetic dataset with independent uniform values:
// n objects, dim dimensions, c distinct values per dimension, missing rate
// sigma.
func GenerateIND(n, dim, c int, sigma float64, seed int64) *Dataset {
	return wrap(gen.Synthetic(gen.Config{N: n, Dim: dim, Cardinality: c, MissingRate: sigma, Dist: gen.IND, Seed: seed}))
}

// GenerateAC is GenerateIND with anti-correlated values, the adversarial
// distribution for dominance queries.
func GenerateAC(n, dim, c int, sigma float64, seed int64) *Dataset {
	return wrap(gen.Synthetic(gen.Config{N: n, Dim: dim, Cardinality: c, MissingRate: sigma, Dist: gen.AC, Seed: seed}))
}

// SimulateMovieLens returns a MovieLens-shaped workload (3,700 movies × 60
// audience ratings 1..5, 95% missing), already negated to smaller-is-better.
func SimulateMovieLens(seed int64) *Dataset { return wrap(gen.MovieLens(seed)) }

// SimulateNBA returns an NBA-shaped workload (16,000 players × 4 correlated
// attributes, 20% missing), negated to smaller-is-better.
func SimulateNBA(seed int64) *Dataset { return wrap(gen.NBA(seed)) }

// SimulateZillow returns a Zillow-shaped workload (n real-estate entries ×
// 5 attributes with wildly different domains, 14.2% missing); n <= 0 means
// the full 200,000.
func SimulateZillow(seed int64, n int) *Dataset { return wrap(gen.Zillow(seed, n)) }
