// Package tkd is the public API of the library: top-k dominating (TKD)
// queries over incomplete multi-dimensional data, implementing the
// algorithms of Miao, Gao, Zheng, Chen and Cui, "Top-k Dominating Queries
// on Incomplete Data" (IEEE TKDE 28(1), 2016).
//
// A TKD query returns the k objects that dominate the most other objects.
// On incomplete data, dominance is decided on the common observed
// dimensions only (smaller is better): o dominates p if o ≤ p wherever both
// are observed and o < p somewhere. The library ships the paper's five
// algorithms — Naive, ESB, UBB, BIG and IBIG — behind one entry point:
//
//	ds := tkd.NewDataset(4)
//	ds.Append("a", 1, 2, tkd.Missing, 4)
//	ds.Append("b", 2, tkd.Missing, 3, 5)
//	res, err := ds.TopK(2)                         // picks IBIG
//	res, err = ds.TopK(2, tkd.WithAlgorithm(tkd.UBB))
//
// Preprocessing artifacts (the MaxScore queue of §4.2 and the bitmap
// indexes of §4.3–4.4) are built lazily on first use and cached until the
// dataset changes; call Prepare to pay the cost up front.
//
// Queries are serial by default; WithWorkers(n) fans candidate scoring
// across a worker pool (0 = GOMAXPROCS) without changing the answer:
//
//	res, err = ds.TopK(2, tkd.WithWorkers(0))      // parallel IBIG
//
// # Epochs
//
// A Dataset is fully concurrency-safe, for mutations as well as queries.
// Internally the data and its acceleration artifacts live in immutable
// published snapshots ("epochs"): a query resolves the current epoch with
// one atomic load and runs on it to completion, while a mutation (Append,
// Negate, ReplaceFrom, a bin-layout change) prepares the next epoch off to
// the side and publishes it with an atomic pointer swap. In-flight queries
// finish on the epoch they started on; queries that start after the swap
// see the new one; nobody blocks anybody. Epoch reports the current
// version, and ReplaceFrom is the zero-downtime wholesale swap a serving
// layer uses to hot-reload a resident dataset.
package tkd

import (
	"context"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gen"
	"repro/internal/impute"
	"repro/internal/obs"
	"repro/internal/skyband"
)

// Missing marks an unobserved value in Append calls.
var Missing = math.NaN()

// MaxDim is the largest supported dimensionality.
const MaxDim = data.MaxDim

// Algorithm selects a query algorithm.
type Algorithm = core.Algorithm

// The five algorithms of the paper, in presentation order.
const (
	Naive = core.AlgNaive // exhaustive pairwise scoring (§4.1 baseline)
	ESB   = core.AlgESB   // extended skyband based, Algorithm 1
	UBB   = core.AlgUBB   // upper bound based, Algorithm 2
	BIG   = core.AlgBIG   // bitmap index guided, Algorithm 4
	IBIG  = core.AlgIBIG  // improved BIG, §4.4 (default)
)

// Item is one answer object; Result is the ranked answer set.
type (
	Item   = core.Item
	Result = core.Result
	// Stats exposes per-query work counters, including the number of
	// objects pruned by each of the paper's three heuristics.
	Stats = core.Stats
)

// IndexRepresentation selects how the binned bitmap index stores its
// columns. The default, AdaptiveIndex, picks dense, compressed or sorted-ID
// sparse per (dimension, bin) column by measured density and dispatches
// query execution to the matching kernels; the pure-codec settings pin
// every column to one codec — the paper's storage setup, and the right
// choice when index bytes matter more than query time. Answers are
// identical under every representation.
type IndexRepresentation int

const (
	// AdaptiveIndex picks each column's representation by density (default).
	AdaptiveIndex IndexRepresentation = iota
	// ConciseIndex pins every column to CONCISE (the paper's IBIG setup).
	ConciseIndex
	// WAHIndex pins every column to WAH.
	WAHIndex
)

// matches reports whether a built index carries this representation.
func (r IndexRepresentation) matches(ix *bitmapidx.Index) bool {
	switch r {
	case ConciseIndex:
		return !ix.Adaptive() && ix.CodecUsed() == bitmapidx.Concise
	case WAHIndex:
		return !ix.Adaptive() && ix.CodecUsed() == bitmapidx.WAH
	default:
		return ix.Adaptive()
	}
}

// binnedOptions translates the representation into bitmapidx build options.
func (r IndexRepresentation) binnedOptions(bins []int) bitmapidx.Options {
	switch r {
	case ConciseIndex:
		return bitmapidx.Options{Codec: bitmapidx.Concise, Bins: bins}
	case WAHIndex:
		return bitmapidx.Options{Codec: bitmapidx.WAH, Bins: bins}
	default:
		return bitmapidx.Options{Codec: bitmapidx.Concise, Bins: bins, Adaptive: true}
	}
}

// need is a bitmask of preprocessing artifacts a query requires.
type need uint8

const (
	needQueue need = 1 << iota
	needBitmap
	needBinned
	needTrees
)

// artifacts is one immutable artifact set. Once a pointer to it is
// published through snapshot.art every field is frozen; growing the set
// installs a fresh copy (copy-on-write), so readers holding an older
// pointer are never disturbed.
type artifacts struct {
	queue  *core.MaxScoreQueue
	bitmap *bitmapidx.Index
	binned *bitmapidx.Index
	trees  []*btree.Tree
}

func (a *artifacts) has(n need) bool {
	if n&needQueue != 0 && a.queue == nil {
		return false
	}
	if n&needBitmap != 0 && a.bitmap == nil {
		return false
	}
	if n&needBinned != 0 && a.binned == nil {
		return false
	}
	if n&needTrees != 0 && a.trees == nil {
		return false
	}
	return true
}

// pre materializes the core.Pre view of the set. Every artifact the chosen
// algorithm touches is already present, so core.RunWorkers never writes into
// the returned struct.
func (a *artifacts) pre() *core.Pre {
	return &core.Pre{Queue: a.queue, Bitmap: a.bitmap, Binned: a.binned}
}

// snapshot is one published epoch of a Dataset: a frozen view of the data
// plus its lazily grown acceleration artifacts. The data is immutable from
// the moment the snapshot is published (mutations copy the staging dataset
// first — see Dataset.cowLocked), so any number of queries may run on one
// snapshot while newer epochs are being prepared and published.
type snapshot struct {
	epoch uint64
	ds    *data.Dataset
	bins  []int
	rep   IndexRepresentation

	// art is the artifact set, read with one atomic load on the query fast
	// path and grown copy-on-write under bmu when a query needs something
	// not built yet.
	art atomic.Pointer[artifacts]
	bmu sync.Mutex

	// mrOnce memoizes MissingRate: the data is frozen, but the scan is
	// O(N) and monitoring endpoints poll it.
	mrOnce sync.Once
	mr     float64
}

// missingRate computes the frozen data's missing rate once per epoch.
func (s *snapshot) missingRate() float64 {
	s.mrOnce.Do(func() { s.mr = s.ds.MissingRate() })
	return s.mr
}

// ensure returns an artifact set satisfying n, building missing pieces
// under the snapshot's build lock. The fast path — everything already
// built — is a single atomic load, so a warm snapshot serves concurrent
// queries with zero lock traffic.
func (s *snapshot) ensure(n need, d *Dataset) *artifacts {
	if a := s.art.Load(); a.has(n) {
		return a
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	a := s.art.Load()
	if a.has(n) {
		return a
	}
	na := *a
	if n&needQueue != 0 && na.queue == nil {
		na.queue = core.BuildMaxScoreQueue(s.ds)
	}
	if n&needBitmap != 0 && na.bitmap == nil {
		na.bitmap = bitmapidx.Build(s.ds, bitmapidx.Options{Codec: bitmapidx.Raw})
	}
	if n&needBinned != 0 && na.binned == nil {
		bins := s.bins
		if bins == nil {
			bins = []int{core.OptimalBins(s.ds.Len(), s.missingRate())}
		}
		na.binned = bitmapidx.Build(s.ds, s.rep.binnedOptions(bins))
		d.binnedBuilds.Add(1)
		if b := d.cacheBudget.Load(); b > 0 {
			na.binned.SetCacheBudget(b)
		}
	}
	if n&needTrees != 0 && na.trees == nil {
		na.trees = core.BuildDimTrees(s.ds)
	}
	s.art.Store(&na)
	return &na
}

// installBinned swaps in a binned index restored by LoadIndex.
func (s *snapshot) installBinned(ix *bitmapidx.Index) {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	na := *s.art.Load()
	na.binned = ix
	s.art.Store(&na)
}

// release drops the retired snapshot's decompressed-column cache so a
// replaced epoch returns its budget immediately instead of at the next GC.
// In-flight queries on the old epoch keep any column vector they already
// hold (eviction never mutates a column) and re-decompress on further
// touches. keep is the successor's binned index when the artifact survived
// the swap (a bin-layout change keeps the queue and bitmap, a ReplaceFrom
// may carry everything).
func (s *snapshot) release(keep *bitmapidx.Index) {
	if a := s.art.Load(); a.binned != nil && a.binned != keep {
		a.binned.DropCache()
	}
}

// Dataset is an incomplete dataset plus cached query acceleration state.
//
// Concurrency: everything is safe to call concurrently with everything
// else. Queries run on immutable published epochs (see the package
// documentation); mutations prepare the next epoch off to the side and
// publish it atomically, so readers never block writers and vice versa.
type Dataset struct {
	// mu guards the staging data and epoch publication; queries do not
	// take it on the fast path.
	mu            sync.Mutex
	staging       *data.Dataset // mutable master copy of the data
	shared        bool          // staging is referenced by a published snapshot: copy before writing
	bins          []int
	indexRep      IndexRepresentation
	pendingBinned *bitmapidx.Index // LoadIndex result awaiting the next publish

	cur   atomic.Pointer[snapshot] // the published epoch; nil when staging is dirty
	epoch atomic.Uint64            // epochs published so far

	cacheBudget  atomic.Int64 // SetCacheBudget value; 0 = bitmapidx default
	binnedBuilds atomic.Int64 // binned-index constructions (LoadIndex does not count)

	// lineage records recent append-only publishes (see delta.go); any other
	// mutation clears it, cutting delta shipping back to full transfers.
	lineage []epochRecord
}

// NewDataset returns an empty dataset with the given dimensionality
// (1..MaxDim). Smaller values are better; use Negate for rating-style data.
func NewDataset(dim int) *Dataset {
	return &Dataset{staging: data.New(dim)}
}

// wrap adopts an internal dataset.
func wrap(ds *data.Dataset) *Dataset { return &Dataset{staging: ds} }

// current returns the published snapshot, publishing the staging data as a
// fresh epoch if mutations have outdated the previous one.
func (d *Dataset) current() *snapshot {
	if s := d.cur.Load(); s != nil {
		return s
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.publishLocked()
}

// publishLocked publishes staging as the next epoch (idempotent when a
// snapshot is already current). Callers hold d.mu.
func (d *Dataset) publishLocked() *snapshot {
	if s := d.cur.Load(); s != nil {
		return s
	}
	s := &snapshot{epoch: d.epoch.Add(1), ds: d.staging, bins: d.bins, rep: d.indexRep}
	a := &artifacts{}
	if d.pendingBinned != nil {
		a.binned = d.pendingBinned
		d.pendingBinned = nil
	}
	s.art.Store(a)
	d.shared = true
	d.cur.Store(s)
	return s
}

// cowLocked makes staging privately writable: if a published snapshot
// references it, mutate a copy instead so in-flight queries keep reading
// frozen data. One copy covers any run of mutations between publishes.
func (d *Dataset) cowLocked() {
	if d.shared {
		d.staging = d.staging.Clone()
		d.shared = false
	}
}

// invalidateLocked retires the published snapshot after a data mutation;
// the next query publishes a fresh epoch from staging. Callers hold d.mu.
func (d *Dataset) invalidateLocked() {
	if old := d.cur.Load(); old != nil {
		d.cur.Store(nil)
		old.release(nil)
	}
	d.pendingBinned = nil // bound to the outdated data
	d.clearLineageLocked()
}

// Epoch returns the number of epochs published so far — a version counter
// that advances on every visible mutation (including wholesale swaps via
// ReplaceFrom). Two queries that observe the same epoch saw identical data.
func (d *Dataset) Epoch() uint64 { return d.epoch.Load() }

// IndexBuilds reports how many times the binned bitmap index was built from
// scratch for this dataset. Indexes restored through LoadIndex do not
// count, which makes the counter the observable for "did the warm start
// skip the rebuild".
func (d *Dataset) IndexBuilds() int64 { return d.binnedBuilds.Load() }

// Append adds one object; use Missing for unobserved dimensions. Objects
// must have at least one observed value. Safe to call while queries are
// running: they finish on the epoch they started on.
func (d *Dataset) Append(id string, values ...float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cowLocked()
	_, err := d.staging.Append(id, values)
	if err == nil {
		d.invalidateLocked()
	}
	return err
}

// RestoreEpoch fast-forwards the epoch counter so the next published epoch
// is numbered at least n. It is the crash-recovery primitive: a restarted
// leader that replayed its write-ahead log resumes the epoch numbering its
// followers and health probes already track, instead of restarting from 1
// and reading as a massive regression. When a snapshot is already current
// it is retired (its binned index carries over to the republish), so the
// restored number takes effect on the very next query. A counter already
// at or past n is left alone.
func (d *Dataset) RestoreEpoch(n uint64) {
	if n == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.epoch.Load() >= n {
		return
	}
	if s := d.cur.Load(); s != nil {
		// Republish the same bytes under the restored number: keep the
		// built binned index for the pending publish, drop the snapshot.
		if a := s.art.Load(); a.binned != nil {
			d.pendingBinned = a.binned
		}
		d.cur.Store(nil)
	}
	d.epoch.Store(n - 1) // publishLocked's Add(1) lands the next epoch on n
	d.clearLineageLocked()
}

// Negate flips every observed value's sign, converting larger-is-better
// data to the library's smaller-is-better convention. Cached indexes are
// invalidated; concurrent queries finish on the pre-Negate epoch.
func (d *Dataset) Negate() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cowLocked()
	d.staging.Negate()
	d.invalidateLocked()
}

// ReplaceFrom atomically publishes src's current data — and any warm
// acceleration artifacts src already built or loaded — as the receiver's
// next epoch. It is the zero-downtime reload primitive: build and index the
// replacement off to the side, then swap it in with one call. In-flight
// queries finish on the old epoch; the old epoch's column cache is dropped
// so its budget frees immediately. src is unaffected (the two datasets
// share the frozen data copy-on-write).
func (d *Dataset) ReplaceFrom(src *Dataset) { d.replaceFrom(src, 0) }

// ReplaceFromAt is ReplaceFrom with an externally assigned epoch number —
// the publish primitive of a replication follower. The swapped-in epoch is
// numbered epoch when that moves the counter forward, so follower and
// leader agree on epoch numbers and a health probe can read convergence off
// the counter; a number at or below the current counter falls back to the
// ordinary +1 bump, keeping the counter strictly monotonic locally.
func (d *Dataset) ReplaceFromAt(src *Dataset, epoch uint64) { d.replaceFrom(src, epoch) }

// replaceFrom implements ReplaceFrom/ReplaceFromAt; at == 0 means "next".
func (d *Dataset) replaceFrom(src *Dataset, at uint64) {
	if src == d {
		return
	}
	ss := src.current()
	sa := ss.art.Load()
	d.mu.Lock()
	defer d.mu.Unlock()
	next := d.epoch.Add(1)
	if at > next {
		d.epoch.Store(at)
		next = at
	}
	s := &snapshot{epoch: next, ds: ss.ds, bins: ss.bins, rep: ss.rep}
	na := *sa
	if na.binned != nil {
		if b := d.cacheBudget.Load(); b > 0 {
			na.binned.SetCacheBudget(b)
		}
	}
	s.art.Store(&na)
	d.staging = ss.ds
	d.shared = true
	d.bins = ss.bins
	d.indexRep = ss.rep
	d.pendingBinned = nil
	old := d.cur.Load()
	d.cur.Store(s)
	if old != nil {
		old.release(na.binned)
	}
	d.clearLineageLocked()
}

// view returns a frozen view of the data for read-only accessors; like a
// query, it publishes the staging data if no epoch is current.
func (d *Dataset) view() *data.Dataset { return d.current().ds }

// Len returns the number of objects; Dim the dimensionality.
func (d *Dataset) Len() int { return d.view().Len() }

// Dim returns the dataset dimensionality.
func (d *Dataset) Dim() int { return d.view().Dim() }

// MissingRate returns the fraction of missing cells (the paper's σ),
// memoized per epoch.
func (d *Dataset) MissingRate() float64 { return d.current().missingRate() }

// Fingerprint returns a 64-bit digest of the dataset's full contents —
// dimensionality, object order, IDs, masks and observed values — stable
// across process restarts. A persisted-index cache compares fingerprints to
// decide reuse-vs-rebuild without trusting file names or mtimes.
func (d *Dataset) Fingerprint() uint64 { return d.view().Fingerprint() }

// ShardData returns the frozen data of the dataset's current epoch — the
// handle the serving layer's shard-protocol endpoint slices row ranges
// from. The returned dataset is immutable (mutations publish new epochs),
// and the pointer itself identifies the epoch: two calls return the same
// pointer exactly when no mutation was published between them.
func (d *Dataset) ShardData() *data.Dataset { return d.view() }

// ID returns the identifier of the i-th object.
func (d *Dataset) ID(i int) string { return d.view().Obj(i).ID }

// Value returns the i-th object's value in dimension dim and whether it is
// observed.
func (d *Dataset) Value(i, dim int) (float64, bool) {
	o := d.view().Obj(i)
	if !o.Observed(dim) {
		return 0, false
	}
	return o.Values[dim], true
}

// Dominates reports whether object i dominates object j under the
// incomplete-data dominance relation (Definition 1 of the paper).
func (d *Dataset) Dominates(i, j int) bool {
	v := d.view()
	return core.Dominates(v.Obj(i), v.Obj(j))
}

// Score returns score(i): how many objects i dominates (Definition 2).
func (d *Dataset) Score(i int) int { return core.Score(d.view(), i) }

// Option configures TopK.
type Option func(*queryConfig)

type queryConfig struct {
	alg          Algorithm
	algSet       bool
	bins         []int
	stats        *Stats
	btree        bool
	workers      int
	ctx          context.Context
	allowPartial bool
	degradation  *Degradation
	trace        *obs.Span
}

// WithAlgorithm forces a specific algorithm (default IBIG).
func WithAlgorithm(a Algorithm) Option {
	return func(c *queryConfig) { c.alg, c.algSet = a, true }
}

// WithBins overrides the bin counts of the binned bitmap index used by
// IBIG: one entry per dimension, or a single entry broadcast to all. The
// default is the paper's space×time optimum, Eq. (8); calling WithBins with
// no arguments keeps that default rather than requesting an empty layout.
// Changing the layout publishes a new epoch (the queue and value-granular
// bitmap carry over; only the binned index rebuilds).
func WithBins(bins ...int) Option {
	return func(c *queryConfig) {
		if len(bins) == 0 {
			// No counts given: leave the Eq. (8) default in force instead of
			// handing the index builder an empty (and formerly panicking)
			// bin list.
			return
		}
		c.bins = bins
	}
}

// WithWorkers fans candidate scoring across n goroutines: 0 selects
// GOMAXPROCS, 1 (the default) is the serial path. UBB, BIG, IBIG and the
// B+-tree refinement run through the batch-windowed parallel engine; Naive
// through the sharded exhaustive scorer; ESB fans its per-bucket skyband
// queries across the pool and scores the survivors through the engine.
//
// Determinism: a parallel query returns the same answer set — identical
// objects, ranks and scores — as the serial run over the same dataset.
// Rank-k ties are broken arbitrarily but identically in both paths (worker
// results are committed to the answer heap in queue order, replaying the
// serial heap's offer sequence exactly), so WithWorkers never changes a
// query's answer, only its wall-clock time.
func WithWorkers(n int) Option {
	return func(c *queryConfig) { c.workers = n }
}

// WithStats captures the query's work counters into st.
func WithStats(st *Stats) Option {
	return func(c *queryConfig) { c.stats = st }
}

// WithBTreeRefinement switches IBIG to the B+-tree-backed Q−P refinement of
// the paper's §4.5 implementation note (one B+-tree per dimension scans
// only the keys inside the candidate's bin). Ignored for other algorithms.
func WithBTreeRefinement() Option {
	return func(c *queryConfig) { c.btree = true }
}

// WithContext bounds the query with ctx: cancellation or an expired
// deadline aborts the work — including, on a sharded dataset, every
// in-flight replica RPC — and TopK returns the context's error.
func WithContext(ctx context.Context) Option {
	return func(c *queryConfig) { c.ctx = ctx }
}

// Span is a trace span of the obs tracing spine; a nil *Span disables
// tracing, at the cost of one nil check per window on the query path.
type Span = obs.Span

// WithTrace records the query's execution under sp as an "engine" child
// span: the algorithm run, its pruning Stats (H1/H2/H3 counts, comparisons,
// windows) and the τ-threshold trajectory at window granularity. sp may be
// nil (tracing off). A span carried by the WithContext context is used when
// this option is absent, which is how the serving layer threads one trace
// through scheduler, engine and shard fan-out.
func WithTrace(sp *Span) Option {
	return func(c *queryConfig) { c.trace = sp }
}

// Degradation reports how a WithAllowPartial query was answered. Degraded
// false means full coverage — the answer is byte-identical to the ordinary
// one; Degraded true means the scores count only CoveredRows of TotalRows
// (the reachable row-ranges), exactly.
type Degradation struct {
	Degraded    bool
	CoveredRows int
	TotalRows   int
	// DownShards lists the unreachable shard indices (empty unless Degraded).
	DownShards []int
}

// WithAllowPartial opts one query into graceful degradation on a sharded
// dataset: when every replica of some shard is down, the query answers
// exactly over the live row-ranges instead of failing, and d (which may be
// nil) receives the explicit coverage report. Without this option the
// default is fail-closed — an unreachable shard fails the query with a
// typed error, never a silently partial answer. Unsharded datasets have no
// shards to lose; they always report full coverage.
func WithAllowPartial(d *Degradation) Option {
	return func(c *queryConfig) {
		c.allowPartial = true
		c.degradation = d
	}
}

// needFor maps a query configuration to the artifacts it consumes.
func needFor(alg Algorithm, btreeRefine bool) need {
	switch alg {
	case UBB:
		return needQueue
	case BIG:
		return needQueue | needBitmap
	case IBIG:
		n := needQueue | needBinned
		if btreeRefine {
			n |= needTrees
		}
		return n
	default: // Naive and ESB work straight off the data
		return 0
	}
}

// Prepare eagerly builds every preprocessing artifact (MaxScore queue,
// bitmap index, binned bitmap index) so that subsequent TopK calls measure
// pure query time. It is idempotent and safe to call concurrently.
func (d *Dataset) Prepare() { d.PrepareFor(UBB, BIG, IBIG) }

// PrepareFor eagerly builds only the artifacts the given algorithms
// consume. A serving process that answers IBIG by default calls
// PrepareFor(IBIG) to skip the value-granular bitmap (the most expensive
// artifact, needed only by BIG); anything skipped still builds lazily on
// first use.
func (d *Dataset) PrepareFor(algs ...Algorithm) {
	var n need
	for _, a := range algs {
		n |= needFor(a, false)
	}
	d.current().ensure(n, d)
}

// SetCacheBudget bounds the decompressed-column cache of the compressed
// bitmap index to at most bytes (0 restores the bitmapidx default), taking
// effect immediately on an already-built index and carrying over to future
// epochs. Long-lived servers use this together with CacheStats to size the
// per-dataset memory footprint.
func (d *Dataset) SetCacheBudget(bytes int64) {
	d.cacheBudget.Store(bytes)
	if s := d.cur.Load(); s != nil {
		if a := s.art.Load(); a.binned != nil {
			b := bytes
			if b <= 0 {
				b = bitmapidx.DefaultCacheBudget
			}
			a.binned.SetCacheBudget(b)
		}
	}
}

// CacheStats reports the decompressed-column cache and representation
// counters of the binned bitmap index: lookup hits and misses, columns
// evicted by the CLOCK policy, resident bytes and the configured budget,
// plus how many columns each physical representation served on the query
// path (DenseCols/CompressedCols/SparseCols) and — for compressed columns —
// the split between run-native kernel execution (NativeKernel) and
// decompress-to-dense fallbacks (Fallback). All zero until an IBIG query
// (or Prepare) builds the index.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Evicted int64
	Bytes   int64
	Budget  int64

	DenseCols      int64
	CompressedCols int64
	SparseCols     int64
	NativeKernel   int64
	Fallback       int64
}

// CacheStats snapshots the column-cache counters; see the CacheStats type.
func (d *Dataset) CacheStats() CacheStats {
	s := d.cur.Load()
	if s == nil {
		return CacheStats{}
	}
	a := s.art.Load()
	if a.binned == nil {
		return CacheStats{}
	}
	st := a.binned.CacheStats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Evicted: st.Evicted, Bytes: st.Bytes, Budget: st.Budget,
		DenseCols: st.DenseCols, CompressedCols: st.CompressedCols, SparseCols: st.SparseCols,
		NativeKernel: st.NativeKernel, Fallback: st.Fallback,
	}
}

// ReleaseCache drops the decompressed-column cache of the current epoch's
// compressed index, returning its bytes to the process immediately. The
// artifacts themselves stay installed and queries still in flight stay
// correct (a dropped column simply decompresses again on the next touch).
// A serving layer calls this when it evicts a resident dataset.
func (d *Dataset) ReleaseCache() {
	if s := d.cur.Load(); s != nil {
		if a := s.art.Load(); a.binned != nil {
			a.binned.DropCache()
		}
	}
}

// setBins records a new bin layout; if it differs from the current one, a
// fresh epoch is published that carries every bins-independent artifact
// (queue, value-granular bitmap, trees) and drops only the binned index.
func (d *Dataset) setBins(bins []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slices.Equal(d.bins, bins) {
		return
	}
	d.bins = slices.Clone(bins)
	d.pendingBinned = nil
	old := d.cur.Load()
	if old == nil {
		return // staging dirty; the layout lands at the next publish
	}
	oa := old.art.Load()
	s := &snapshot{epoch: d.epoch.Add(1), ds: old.ds, bins: d.bins, rep: d.indexRep}
	s.art.Store(&artifacts{queue: oa.queue, bitmap: oa.bitmap, trees: oa.trees})
	d.cur.Store(s)
	old.release(nil)
	d.clearLineageLocked()
}

// SetIndexRepresentation selects how the binned bitmap index stores its
// columns (see IndexRepresentation). Changing it publishes a fresh epoch
// that keeps every representation-independent artifact and drops only the
// binned index, which rebuilds lazily under the new setting; in-flight
// queries finish on the old epoch. Answers are identical under every
// representation, so this is purely a space/time knob.
func (d *Dataset) SetIndexRepresentation(rep IndexRepresentation) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.indexRep == rep {
		return
	}
	d.indexRep = rep
	d.pendingBinned = nil
	old := d.cur.Load()
	if old == nil {
		return // staging dirty; the setting lands at the next publish
	}
	oa := old.art.Load()
	s := &snapshot{epoch: d.epoch.Add(1), ds: old.ds, bins: d.bins, rep: rep}
	s.art.Store(&artifacts{queue: oa.queue, bitmap: oa.bitmap, trees: oa.trees})
	d.cur.Store(s)
	old.release(nil)
	d.clearLineageLocked()
}

// TopK answers the TKD query: the k objects with the highest scores, in
// descending score order. Rank-k ties are broken arbitrarily, as in the
// paper. Safe for concurrent use: any number of goroutines may query one
// Dataset, sharing its warm indexes and column cache, even while other
// goroutines mutate it (each query runs on the epoch current at its start).
func (d *Dataset) TopK(k int, opts ...Option) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("tkd: k must be positive, got %d", k)
	}
	cfg := queryConfig{alg: IBIG, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ctx != nil {
		if err := cfg.ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if cfg.degradation != nil {
		// An unsharded dataset has no shards to lose: coverage is always
		// total. (AllowPartial itself is a no-op here.)
		*cfg.degradation = Degradation{CoveredRows: d.Len(), TotalRows: d.Len()}
	}
	if cfg.bins != nil {
		d.setBins(cfg.bins)
	}
	s := d.current()
	if s.ds.Len() == 0 {
		return Result{}, fmt.Errorf("tkd: empty dataset")
	}
	a := s.ensure(needFor(cfg.alg, cfg.btree), d)
	eng := cfg.engineSpan(k, s.ds.Len())
	var res Result
	var st Stats
	if cfg.alg == IBIG && cfg.btree {
		res, st = core.IBIGBTreeWorkersTraced(s.ds, k, a.binned, a.queue, a.trees, cfg.workers, eng)
	} else {
		res, st = core.RunWorkersTraced(cfg.alg, s.ds, k, a.pre(), cfg.workers, eng)
	}
	stampStats(eng, st)
	eng.End()
	if cfg.stats != nil {
		*cfg.stats = st
	}
	return res, nil
}

// engineSpan opens the "engine" child span a traced query executes under:
// the explicit WithTrace span wins, else a span riding the WithContext
// context, else nil (tracing off — every span call below no-ops).
func (cfg *queryConfig) engineSpan(k, rows int) *obs.Span {
	sp := cfg.trace
	if sp == nil && cfg.ctx != nil {
		sp = obs.SpanFromContext(cfg.ctx)
	}
	eng := sp.StartChild("engine")
	eng.SetStr("algorithm", cfg.alg.String())
	eng.SetInt("k", int64(k))
	eng.SetInt("rows", int64(rows))
	return eng
}

// stampStats records the paper's pruning counters on the engine span.
func stampStats(sp *obs.Span, st Stats) {
	if sp == nil {
		return
	}
	sp.SetInt("candidates", int64(st.Candidates))
	sp.SetInt("scored", int64(st.Scored))
	sp.SetInt("pruned_h1", int64(st.PrunedH1))
	sp.SetInt("pruned_h2", int64(st.PrunedH2))
	sp.SetInt("pruned_h3", int64(st.PrunedH3))
	sp.SetInt("pruned_skyband", int64(st.PrunedSkyband))
	sp.SetInt("comparisons", st.Comparisons)
	sp.SetInt("windows", int64(st.Windows))
	sp.SetInt("workers", int64(st.Workers))
}

// Project returns a new dataset restricted to the given dimensions, in the
// given order — subspace dominating queries (a TKD variant the paper
// surveys in §2.1) are TopK calls on the projection. Objects that lose all
// observed values are dropped; the returned slice maps each projected
// object back to its index in the receiver.
func (d *Dataset) Project(dims ...int) (*Dataset, []int, error) {
	sub, origin, err := d.view().Project(dims)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int, len(origin))
	for i, o := range origin {
		out[i] = int(o)
	}
	return wrap(sub), out, nil
}

// SaveIndex builds (if necessary) and serializes the IBIG binned bitmap
// index, the dominant preprocessing artifact. LoadIndex restores it against
// the same dataset, skipping the rebuild.
func (d *Dataset) SaveIndex(w io.Writer) error {
	a := d.current().ensure(needBinned, d)
	return a.binned.Save(w)
}

// LoadIndex restores an index written by SaveIndex. The dataset must be
// identical to the one the index was built from; shape and per-dimension
// domains are verified and the stream is checksummed. On any error the
// dataset is left exactly as it was — a corrupt index file never poisons a
// running server.
func (d *Dataset) LoadIndex(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	target := d.staging
	s := d.cur.Load()
	if s != nil {
		target = s.ds
	}
	ix, err := bitmapidx.Load(r, target)
	if err != nil {
		return err
	}
	if !d.indexRep.matches(ix) {
		// An index persisted under a different representation setting must
		// not silently override the pin; callers (e.g. the server's
		// fingerprint-keyed index cache) treat this like any other load
		// failure and rebuild under the current setting.
		return fmt.Errorf("tkd: persisted index representation (adaptive=%v codec=%v) does not match the dataset setting — rebuild",
			ix.Adaptive(), ix.CodecUsed())
	}
	if b := d.cacheBudget.Load(); b > 0 {
		ix.SetCacheBudget(b)
	}
	if s != nil {
		s.installBinned(ix)
	} else {
		d.pendingBinned = ix
	}
	return nil
}

// KSkyband returns the dataset indices of the objects dominated by fewer
// than k others — the kISB operator over incomplete data that ESB's pruning
// is built on (§4.1/Lemma 1 of the paper). Results preserve dataset order.
func (d *Dataset) KSkyband(k int) []int {
	ids := skyband.GlobalKSkyband(d.view(), k)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Skyline returns the incomplete-data skyline: the objects no other object
// dominates (the 1-skyband).
func (d *Dataset) Skyline() []int { return d.KSkyband(1) }

// TopKMFD answers the TKD query under the MFD-weighted scoring extension of
// §3: each dominance o ≺ p earns weight Σ_{both observed} w_i +
// λ·Σ_{one observed} w_j, and objects are ranked by accumulated weight.
func (d *Dataset) TopKMFD(k int, weights []float64, lambda float64) ([]core.WeightedItem, error) {
	return core.TopKMFD(d.view(), k, core.MFD{Weights: weights, Lambda: lambda})
}

// Impute returns a complete copy of the dataset with missing cells
// predicted by SGD matrix factorization (the Table 4 baseline): factors
// latent dimensions, iters sweeps. Pass factors, iters <= 0 for the paper's
// defaults (8 factors, 50 iterations).
func (d *Dataset) Impute(factors, iters int, seed int64) *Dataset {
	cfg := impute.DefaultConfig(seed)
	if factors > 0 {
		cfg.Factors = factors
	}
	if iters > 0 {
		cfg.Iterations = iters
	}
	return wrap(impute.Impute(d.view(), cfg))
}

// JaccardDistance measures answer-set dissimilarity by object ID, the
// Table 4 metric.
func JaccardDistance(a, b Result) float64 {
	return impute.JaccardDistance(a.IDs(), b.IDs())
}

// OptimalBins evaluates the paper's Eq. (8): the bin count that optimizes
// the space×time product for a dataset of n objects with missing rate
// sigma.
func OptimalBins(n int, sigma float64) int { return core.OptimalBins(n, sigma) }

// WriteCSV serializes the dataset ("-" marks missing values).
func (d *Dataset) WriteCSV(w io.Writer) error { return d.view().WriteCSV(w) }

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds, err := data.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return wrap(ds), nil
}

// ---- Workload generation (the paper's §5 datasets) ----

// GenerateIND returns a synthetic dataset with independent uniform values:
// n objects, dim dimensions, c distinct values per dimension, missing rate
// sigma.
func GenerateIND(n, dim, c int, sigma float64, seed int64) *Dataset {
	return wrap(gen.Synthetic(gen.Config{N: n, Dim: dim, Cardinality: c, MissingRate: sigma, Dist: gen.IND, Seed: seed}))
}

// GenerateAC is GenerateIND with anti-correlated values, the adversarial
// distribution for dominance queries.
func GenerateAC(n, dim, c int, sigma float64, seed int64) *Dataset {
	return wrap(gen.Synthetic(gen.Config{N: n, Dim: dim, Cardinality: c, MissingRate: sigma, Dist: gen.AC, Seed: seed}))
}

// SimulateMovieLens returns a MovieLens-shaped workload (3,700 movies × 60
// audience ratings 1..5, 95% missing), already negated to smaller-is-better.
func SimulateMovieLens(seed int64) *Dataset { return wrap(gen.MovieLens(seed)) }

// SimulateNBA returns an NBA-shaped workload (16,000 players × 4 correlated
// attributes, 20% missing), negated to smaller-is-better.
func SimulateNBA(seed int64) *Dataset { return wrap(gen.NBA(seed)) }

// SimulateZillow returns a Zillow-shaped workload (n real-estate entries ×
// 5 attributes with wildly different domains, 14.2% missing); n <= 0 means
// the full 200,000.
func SimulateZillow(seed int64, n int) *Dataset { return wrap(gen.Zillow(seed, n)) }
