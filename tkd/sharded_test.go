package tkd

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// algorithms under crosscheck: the paper's five plus the B+-tree-refined
// IBIG variant (a distinct serial code path, so it earns its own column).
var shardCrosscheckAlgs = []struct {
	name string
	opts []Option
}{
	{"Naive", []Option{WithAlgorithm(Naive)}},
	{"ESB", []Option{WithAlgorithm(ESB)}},
	{"UBB", []Option{WithAlgorithm(UBB)}},
	{"BIG", []Option{WithAlgorithm(BIG)}},
	{"IBIG", []Option{WithAlgorithm(IBIG)}},
	{"IBIG-btree", []Option{WithAlgorithm(IBIG), WithBTreeRefinement()}},
}

func assertSameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if len(want.Items) != len(got.Items) {
		t.Fatalf("%s: %d items, want %d", label, len(got.Items), len(want.Items))
	}
	for i := range want.Items {
		w, g := want.Items[i], got.Items[i]
		if w.Index != g.Index || w.ID != g.ID || w.Score != g.Score {
			t.Fatalf("%s: rank %d: got {%d %q %d}, want {%d %q %d}",
				label, i+1, g.Index, g.ID, g.Score, w.Index, w.ID, w.Score)
		}
	}
}

// TestShardedCrosscheck asserts that the sharded dataset returns
// byte-identical answers — identical objects, ranks and scores — to the
// unsharded one, across all five algorithms (plus the B+-tree refinement)
// and N = 1, 2, 4 shards, on both value distributions.
func TestShardedCrosscheck(t *testing.T) {
	datasets := map[string]*Dataset{
		"IND": GenerateIND(900, 4, 30, 0.25, 42),
		"AC":  GenerateAC(700, 3, 25, 0.3, 43),
	}
	for dname, ds := range datasets {
		for _, n := range []int{1, 2, 4} {
			sd, err := Shard(ds, dname, WithShards(n))
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range shardCrosscheckAlgs {
				for _, k := range []int{1, 5, 16} {
					want, err := ds.TopK(k, alg.opts...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sd.TopK(k, alg.opts...)
					if err != nil {
						t.Fatalf("%s/%s n=%d k=%d: %v", dname, alg.name, n, k, err)
					}
					assertSameResult(t, fmt.Sprintf("%s/%s n=%d k=%d", dname, alg.name, n, k), want, got)
				}
			}
		}
	}
}

// TestShardedCrosscheckTies drives the rank-k tie-break case explicitly: a
// tiny value domain makes many objects share the k-th score, so the merge
// must replay the serial offer order (stable id-order within the heap's
// final sort) to stay byte-identical.
func TestShardedCrosscheckTies(t *testing.T) {
	// Cardinality 3 over 600 objects: scores collide massively.
	ds := GenerateIND(600, 3, 3, 0.35, 7)
	for _, n := range []int{2, 4} {
		sd, err := Shard(ds, "ties", WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range shardCrosscheckAlgs {
			for _, k := range []int{4, 10, 32} {
				want, err := ds.TopK(k, alg.opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sd.TopK(k, alg.opts...)
				if err != nil {
					t.Fatal(err)
				}
				// The k-th score must actually tie for this test to bite.
				assertSameResult(t, fmt.Sprintf("ties/%s n=%d k=%d", alg.name, n, k), want, got)
			}
		}
	}
	// Sanity: confirm the fixture really does tie at the boundary.
	res, err := ds.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Items[len(res.Items)-1].Score
	tied := 0
	for i := 0; i < ds.Len(); i++ {
		if ds.Score(i) == last {
			tied++
		}
	}
	if tied < 2 {
		t.Fatalf("fixture has no tie at the k-th score (score %d held by %d objects); tighten the generator", last, tied)
	}
}

// TestShardedTauPushdown asserts the cross-shard pruning is observable: an
// IBIG run over enough data must prune at least one candidate through the
// pushed-down τ, and must have fanned out to every shard.
func TestShardedTauPushdown(t *testing.T) {
	// Anti-correlated data with a high missing rate keeps several hundred
	// candidates past Heuristic 1, so the query spans multiple windows and
	// the bounds phase runs with a live τ (the serial run prunes ~200 of
	// these through Heuristic 2).
	ds := GenerateAC(3000, 4, 20, 0.4, 9)
	sd, err := Shard(ds, "push", WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.TopK(16, WithAlgorithm(IBIG)); err != nil {
		t.Fatal(err)
	}
	m := sd.Metrics()
	if m.TauPushdowns == 0 {
		t.Fatalf("expected τ push-down prunes on an IBIG run, metrics: %+v", m)
	}
	if m.Fanout == 0 {
		t.Fatal("expected shard fan-out calls")
	}
	if len(m.PerShard) != 4 {
		t.Fatalf("expected 4 per-shard histograms, got %d", len(m.PerShard))
	}
	for s, h := range m.PerShard {
		if h.Count == 0 {
			t.Fatalf("shard %d observed no scatter calls", s)
		}
	}
}

// TestShardedFollowsEpochs checks the shard set tracks source mutations:
// append through the source, query through the shards, answers match a
// fresh unsharded run.
func TestShardedFollowsEpochs(t *testing.T) {
	ds := GenerateIND(400, 3, 12, 0.2, 5)
	sd, err := Shard(ds, "epochs", WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	before, err := sd.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "pre-mutation", want, before)

	if err := ds.Append("late-arrival", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	want, err = ds.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sd.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-append", want, got)
	found := false
	for _, it := range got.Items {
		if it.ID == "late-arrival" {
			found = true
		}
	}
	if !found {
		t.Fatal("the all-best appended object should enter the top-k")
	}
}

// TestShardedConcurrentReload hammers queries against concurrent individual
// shard reloads and a wholesale ReplaceFrom — the race-clean contract. Run
// under -race.
func TestShardedConcurrentReload(t *testing.T) {
	ds := GenerateIND(800, 4, 20, 0.25, 21)
	sd, err := Shard(ds, "reload", WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.TopK(6)
	if err != nil {
		t.Fatal(err)
	}
	replacement := GenerateIND(800, 4, 20, 0.25, 21) // same seed: same answers

	var queriers, reloaders sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got, err := sd.TopK(6)
				if err != nil {
					errs <- err
					return
				}
				for j := range want.Items {
					if got.Items[j] != want.Items[j] {
						errs <- fmt.Errorf("answer changed under reload at rank %d: %+v != %+v", j+1, got.Items[j], want.Items[j])
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		reloaders.Add(1)
		go func(g int) {
			defer reloaders.Done()
			for i := 0; i < 20; i++ {
				if err := sd.ReloadShard((g*2 + i) % sd.ShardCount()); err != nil {
					errs <- err
					return
				}
				if i%7 == 3 {
					sd.ReplaceFrom(replacement)
				}
			}
		}(g)
	}
	reloaders.Wait()
	close(stop)
	queriers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestShardedIndexPersistRoundTrip saves every shard's index and restores it
// into a fresh sharded view of the same data: zero rebuilds afterwards, and
// a stream from the wrong shard is rejected (fingerprint keying).
func TestShardedIndexPersistRoundTrip(t *testing.T) {
	ds := GenerateIND(500, 3, 15, 0.2, 31)
	sd, err := Shard(ds, "persist", WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	sd.Prepare()
	if sd.IndexBuilds() != 3 {
		t.Fatalf("expected 3 shard index builds, got %d", sd.IndexBuilds())
	}
	saved := make([]*bytes.Buffer, 3)
	for i := range saved {
		saved[i] = &bytes.Buffer{}
		if err := sd.SaveShardIndex(i, saved[i]); err != nil {
			t.Fatal(err)
		}
	}

	fresh, err := Shard(GenerateIND(500, 3, 15, 0.2, 31), "persist", WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong shard's stream: rejected, shard unchanged.
	if err := fresh.LoadShardIndex(0, bytes.NewReader(saved[1].Bytes())); err == nil {
		t.Fatal("expected a fingerprint mismatch loading shard 1's index into shard 0")
	}
	for i := range saved {
		if err := fresh.LoadShardIndex(i, bytes.NewReader(saved[i].Bytes())); err != nil {
			t.Fatalf("shard %d warm load: %v", i, err)
		}
	}
	want, err := ds.TopK(7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.TopK(7)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "warm-restored", want, got)
	if fresh.IndexBuilds() != 0 {
		t.Fatalf("warm restart built %d indexes, want 0", fresh.IndexBuilds())
	}
}
