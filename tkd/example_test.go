package tkd_test

import (
	"fmt"

	"repro/tkd"
)

// Example runs a top-1 dominating query on the paper's §1 movie scenario:
// four movies, five audiences, most ratings missing. The Godfather (m2)
// wins — one shared audience rates it above every rival and none rates it
// below.
func Example() {
	M := tkd.Missing
	movies := tkd.NewDataset(5)
	movies.Append("Schindler's List", M, M, 3, 4, 2)
	movies.Append("The Godfather", 5, 3, 4, M, M)
	movies.Append("The Silence of the Lambs", M, 2, 1, 5, 3)
	movies.Append("Star Wars", 3, 1, 5, 4, 4)
	movies.Negate() // ratings: larger is better

	res, _ := movies.TopK(1)
	fmt.Printf("%s dominates %d movies\n", res.Items[0].ID, res.Items[0].Score)
	// Output: The Godfather dominates 2 movies
}

// ExampleDataset_TopK answers a T2D query on the paper's Fig. 3 running
// example with the default algorithm (IBIG) and prints both answers.
func ExampleDataset_TopK() {
	M := tkd.Missing
	ds := tkd.NewDataset(4)
	rows := map[string][]float64{
		"A1": {M, 3, 1, 3}, "A2": {M, 1, 2, 1}, "A3": {M, 1, 3, 4},
		"A4": {M, 7, 4, 5}, "A5": {M, 4, 8, 3}, "B1": {M, M, 1, 2},
		"B2": {M, M, 3, 1}, "B3": {M, M, 4, 9}, "B4": {M, M, 3, 7},
		"B5": {M, M, 7, 4}, "C1": {2, M, M, 3}, "C2": {2, M, M, 1},
		"C3": {3, M, M, 2}, "C4": {3, M, M, 3}, "C5": {3, M, M, 4},
		"D1": {3, 5, M, 2}, "D2": {2, 1, M, 4}, "D3": {2, 4, M, 1},
		"D4": {4, 4, M, 5}, "D5": {5, 5, M, 4},
	}
	// Insert in a fixed order so the example output is deterministic.
	for _, id := range []string{
		"A1", "A2", "A3", "A4", "A5", "B1", "B2", "B3", "B4", "B5",
		"C1", "C2", "C3", "C4", "C5", "D1", "D2", "D3", "D4", "D5",
	} {
		ds.Append(id, rows[id]...)
	}

	res, _ := ds.TopK(2)
	for _, it := range res.Items {
		fmt.Printf("%s: %d\n", it.ID, it.Score)
	}
	// Output:
	// A2: 16
	// C2: 16
}

// ExampleDataset_Dominates shows that dominance on incomplete data is
// decided on common observed dimensions only and is not symmetric.
func ExampleDataset_Dominates() {
	M := tkd.Missing
	ds := tkd.NewDataset(2)
	ds.Append("f", 4, 2)
	ds.Append("c", 5, M)
	ds.Append("e", M, 4)

	fmt.Println(ds.Dominates(0, 1)) // f vs c: 4 < 5 on the only common dim
	fmt.Println(ds.Dominates(1, 2)) // c vs e: no common observed dimension
	// Output:
	// true
	// false
}

// ExampleDataset_Skyline computes the incomplete-data skyline (the objects
// nothing dominates) of a small dataset.
func ExampleDataset_Skyline() {
	// Note how aggressive incomplete-data dominance is: "unknown-speed"
	// competes only on price, loses that single common dimension to
	// "cheap-slow", and drops out — its unrated speed cannot save it.
	M := tkd.Missing
	ds := tkd.NewDataset(2)
	ds.Append("cheap-slow", 1, 9)
	ds.Append("fast-dear", 9, 1)
	ds.Append("balanced", 4, 4)
	ds.Append("bad", 9, 9)
	ds.Append("unknown-speed", 9, M)

	for _, i := range ds.Skyline() {
		fmt.Println(ds.ID(i))
	}
	// Output:
	// cheap-slow
	// fast-dear
	// balanced
}
