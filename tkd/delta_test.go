package tkd_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/tkd"
)

// deltaBatch builds a deterministic append batch over (and beyond) the value
// domain of a GenerateIND(c=...) dataset: in-domain duplicates plus values
// below, between and above the existing grid, with some missing cells.
func deltaBatch(tag string, n, dim, c int, seed int64) []tkd.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tkd.Row, n)
	for i := range rows {
		vals := make([]float64, dim)
		for d := range vals {
			switch rng.Intn(6) {
			case 0:
				vals[d] = tkd.Missing
			case 1:
				vals[d] = -1 - rng.Float64() // below the domain
			case 2:
				vals[d] = float64(c) + rng.Float64()*3 // above the domain
			case 3:
				vals[d] = float64(rng.Intn(c)) + 0.5 // between grid values
			default:
				vals[d] = float64(rng.Intn(c)) // existing value
			}
		}
		vals[rng.Intn(dim)] = float64(rng.Intn(c)) // ensure observed
		rows[i] = tkd.Row{ID: fmt.Sprintf("%s%d", tag, i), Values: vals}
	}
	return rows
}

// rebuildFrom replays ds's current data plus the batch into a fresh dataset
// and prepares it from scratch — the golden reference for a delta publish.
func rebuildFrom(t *testing.T, ds *tkd.Dataset, rows []tkd.Row) *tkd.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	scratch, err := tkd.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := scratch.Append(r.ID, r.Values...); err != nil {
			t.Fatal(err)
		}
	}
	scratch.PrepareFor(tkd.IBIG)
	return scratch
}

// TestAppendRowsPatchesAndMatchesRebuild is the golden crosscheck: a warm
// dataset absorbs a batch through the incremental path (no index rebuild)
// and must answer every query exactly like a from-scratch build — identical
// fingerprint, identical ranked items.
func TestAppendRowsPatchesAndMatchesRebuild(t *testing.T) {
	ds := tkd.GenerateIND(600, 4, 16, 0.25, 42)
	ds.PrepareFor(tkd.IBIG)
	e0, b0 := ds.Epoch(), ds.IndexBuilds()

	rows := deltaBatch("x", 40, 4, 16, 7)
	patched, err := ds.AppendRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Fatal("warm dataset did not take the incremental path")
	}
	if got := ds.Epoch(); got != e0+1 {
		t.Fatalf("epoch %d, want %d", got, e0+1)
	}
	if got := ds.IndexBuilds(); got != b0 {
		t.Fatalf("incremental publish rebuilt the index (%d -> %d builds)", b0, got)
	}
	if got, want := ds.Len(), 600+len(rows); got != want {
		t.Fatalf("len %d, want %d", got, want)
	}

	scratch := rebuildFrom(t, ds, nil)
	if ds.Fingerprint() != scratch.Fingerprint() {
		t.Fatal("fingerprint diverges from a from-scratch rebuild")
	}
	for _, k := range []int{1, 10, 64} {
		got, err := ds.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Items, want.Items) {
			t.Fatalf("k=%d: patched answers diverge from rebuild:\n%v\n%v", k, got.Items, want.Items)
		}
	}
	// The other algorithms rebuild their artifacts lazily on the new epoch
	// and must agree too.
	for _, alg := range []tkd.Algorithm{tkd.UBB, tkd.BIG} {
		got, err := ds.TopK(10, tkd.WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.TopK(10, tkd.WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Items, want.Items) {
			t.Fatalf("%v: patched answers diverge from rebuild", alg)
		}
	}
}

// TestAppendRowsChained: repeated small batches keep patching, each bumping
// the epoch once, and the end state matches one big rebuild.
func TestAppendRowsChained(t *testing.T) {
	ds := tkd.GenerateIND(300, 3, 8, 0.2, 5)
	ds.PrepareFor(tkd.IBIG)
	b0 := ds.IndexBuilds()
	var all []tkd.Row
	for round := 0; round < 5; round++ {
		rows := deltaBatch(fmt.Sprintf("r%d-", round), 10, 3, 8, int64(round))
		all = append(all, rows...)
		patched, err := ds.AppendRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		if !patched {
			t.Fatalf("round %d fell back to a rebuild", round)
		}
	}
	if got := ds.IndexBuilds(); got != b0 {
		t.Fatalf("chained appends rebuilt the index (%d -> %d builds)", b0, got)
	}
	fresh := tkd.GenerateIND(300, 3, 8, 0.2, 5)
	for _, r := range all {
		if err := fresh.Append(r.ID, r.Values...); err != nil {
			t.Fatal(err)
		}
	}
	fresh.PrepareFor(tkd.IBIG)
	got, _ := ds.TopK(15)
	want, _ := fresh.TopK(15)
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatal("chained patched answers diverge from rebuild")
	}
}

// TestAppendRowsColdFallback: with no binned index built yet there is
// nothing to patch; AppendRows publishes via the rebuild path and still
// leaves the dataset fully prepared and correct.
func TestAppendRowsColdFallback(t *testing.T) {
	ds := tkd.GenerateIND(200, 3, 8, 0.2, 9)
	rows := deltaBatch("x", 10, 3, 8, 3)
	patched, err := ds.AppendRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if patched {
		t.Fatal("cold dataset cannot have taken the incremental path")
	}
	if got, want := ds.Len(), 210; got != want {
		t.Fatalf("len %d, want %d", got, want)
	}
	scratch := rebuildFrom(t, ds, nil)
	got, _ := ds.TopK(10)
	want, _ := scratch.TopK(10)
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatal("fallback publish answers diverge from rebuild")
	}
}

// TestAppendRowsValidation: a bad row rejects the whole batch with no state
// change.
func TestAppendRowsValidation(t *testing.T) {
	ds := tkd.GenerateIND(100, 3, 8, 0.2, 1)
	ds.PrepareFor(tkd.IBIG)
	e0, n0 := ds.Epoch(), ds.Len()
	_, err := ds.AppendRows([]tkd.Row{
		{ID: "good", Values: []float64{1, 2, 3}},
		{ID: "bad", Values: []float64{tkd.Missing, tkd.Missing, tkd.Missing}},
	})
	if err == nil {
		t.Fatal("all-missing row accepted")
	}
	if ds.Epoch() != e0 || ds.Len() != n0 {
		t.Fatal("failed batch mutated the dataset")
	}
	if patched, err := ds.AppendRows(nil); err != nil || patched {
		t.Fatal("empty batch should be a no-op")
	}
}

// TestDeltaExportApply walks the replication path: a follower holding the
// leader's epoch applies a delta stream and converges to the same epoch and
// fingerprint, over a transfer carrying only the appended rows.
func TestDeltaExportApply(t *testing.T) {
	leader := tkd.GenerateIND(800, 4, 16, 0.2, 11)
	leader.PrepareFor(tkd.IBIG)

	// Full sync: follower imports the complete epoch stream.
	var full bytes.Buffer
	if err := leader.ExportEpoch().Write(&full, true); err != nil {
		t.Fatal(err)
	}
	fullBytes := full.Len()
	imported, ep, err := tkd.ImportEpoch(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	follower := tkd.NewDataset(4)
	follower.ReplaceFromAt(imported, ep)
	haveEpoch, haveFP := follower.Epoch(), follower.Fingerprint()

	// Leader appends; a delta from the follower's base must exist.
	if _, err := leader.AppendRows(deltaBatch("x", 64, 4, 16, 13)); err != nil {
		t.Fatal(err)
	}
	x, ok := leader.ExportEpochDelta(haveEpoch, haveFP)
	if !ok {
		t.Fatal("no delta available for the follower's base")
	}
	if x.Rows() != 64 {
		t.Fatalf("delta carries %d rows, want 64", x.Rows())
	}
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= fullBytes {
		t.Fatalf("delta stream (%d bytes) not smaller than full stream (%d bytes)", buf.Len(), fullBytes)
	}

	parsed, err := tkd.ReadEpochDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := follower.ApplyEpochDelta(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Fatal("follower with a warm imported index should patch, not rebuild")
	}
	if follower.Epoch() != leader.Epoch() {
		t.Fatalf("epochs diverge: follower %d, leader %d", follower.Epoch(), leader.Epoch())
	}
	if follower.Fingerprint() != leader.Fingerprint() {
		t.Fatal("fingerprints diverge after delta apply")
	}
	got, _ := follower.TopK(10)
	want, _ := leader.TopK(10)
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatal("follower answers diverge from leader after delta apply")
	}

	// A second delta chains off the first.
	haveEpoch, haveFP = follower.Epoch(), follower.Fingerprint()
	if _, err := leader.AppendRows(deltaBatch("y", 8, 4, 16, 17)); err != nil {
		t.Fatal(err)
	}
	x2, ok := leader.ExportEpochDelta(haveEpoch, haveFP)
	if !ok {
		t.Fatal("no chained delta available")
	}
	var buf2 bytes.Buffer
	if err := x2.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	parsed2, err := tkd.ReadEpochDelta(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ApplyEpochDelta(parsed2); err != nil {
		t.Fatal(err)
	}
	if follower.Fingerprint() != leader.Fingerprint() {
		t.Fatal("fingerprints diverge after chained delta")
	}
}

// TestDeltaExportSpansEpochs: a follower several append-publishes behind
// gets one delta covering all of them.
func TestDeltaExportSpansEpochs(t *testing.T) {
	leader := tkd.GenerateIND(200, 3, 8, 0.2, 19)
	leader.PrepareFor(tkd.IBIG)
	haveEpoch, haveFP := leader.Epoch(), leader.Fingerprint()
	total := 0
	for round := 0; round < 3; round++ {
		rows := deltaBatch(fmt.Sprintf("r%d-", round), 5, 3, 8, int64(round))
		total += len(rows)
		if _, err := leader.AppendRows(rows); err != nil {
			t.Fatal(err)
		}
	}
	x, ok := leader.ExportEpochDelta(haveEpoch, haveFP)
	if !ok {
		t.Fatal("no delta spanning multiple publishes")
	}
	if x.Rows() != total {
		t.Fatalf("delta carries %d rows, want %d", x.Rows(), total)
	}
	if x.Epoch() != leader.Epoch() || x.Fingerprint() != leader.Fingerprint() {
		t.Fatal("delta does not land on the leader's current epoch")
	}
}

// TestDeltaExportRefused pins every condition that must force a full sync.
func TestDeltaExportRefused(t *testing.T) {
	leader := tkd.GenerateIND(200, 3, 8, 0.2, 23)
	leader.PrepareFor(tkd.IBIG)
	base, baseFP := leader.Epoch(), leader.Fingerprint()
	if _, err := leader.AppendRows(deltaBatch("x", 5, 3, 8, 1)); err != nil {
		t.Fatal(err)
	}

	if _, ok := leader.ExportEpochDelta(leader.Epoch(), leader.Fingerprint()); ok {
		t.Error("delta to the current epoch itself must be refused")
	}
	if _, ok := leader.ExportEpochDelta(base, baseFP^1); ok {
		t.Error("divergent base fingerprint must be refused")
	}
	if _, ok := leader.ExportEpochDelta(base+100, baseFP); ok {
		t.Error("unknown base epoch must be refused")
	}

	// A non-append mutation cuts the lineage entirely.
	if err := leader.Append("cut", 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	leader.PrepareFor(tkd.IBIG)
	if _, ok := leader.ExportEpochDelta(base, baseFP); ok {
		t.Error("lineage must be cut by a plain Append")
	}

	// ...and starts fresh from the next append-publish.
	e, fp := leader.Epoch(), leader.Fingerprint()
	if _, err := leader.AppendRows(deltaBatch("y", 5, 3, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := leader.ExportEpochDelta(e, fp); !ok {
		t.Error("fresh lineage should resume delta availability")
	}
}

// TestApplyEpochDeltaRejectsDivergence: a follower whose base does not match
// the delta's must refuse before publishing anything.
func TestApplyEpochDeltaRejectsDivergence(t *testing.T) {
	leader := tkd.GenerateIND(200, 3, 8, 0.2, 29)
	leader.PrepareFor(tkd.IBIG)
	base, baseFP := leader.Epoch(), leader.Fingerprint()
	if _, err := leader.AppendRows(deltaBatch("x", 5, 3, 8, 3)); err != nil {
		t.Fatal(err)
	}
	x, ok := leader.ExportEpochDelta(base, baseFP)
	if !ok {
		t.Fatal("no delta")
	}
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	divergent := tkd.GenerateIND(200, 3, 8, 0.2, 31) // different seed, same epoch count
	divergent.PrepareFor(tkd.IBIG)
	parsed, err := tkd.ReadEpochDelta(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	e0 := divergent.Epoch()
	if _, err := divergent.ApplyEpochDelta(parsed); err == nil {
		t.Fatal("divergent follower accepted a delta")
	}
	if divergent.Epoch() != e0 {
		t.Fatal("refused delta still published an epoch")
	}

	// Corrupting the rows section must trip the final fingerprint check.
	// The flip lands a few bytes into the CSV (the header is 8 bytes of
	// magic plus five uint64 fields), inside the first row's identifier.
	clipped := append([]byte(nil), raw...)
	clipped[8+5*8+2] ^= 1
	parsed, err = tkd.ReadEpochDelta(bytes.NewReader(clipped))
	if err == nil {
		matching := tkd.GenerateIND(200, 3, 8, 0.2, 29)
		matching.PrepareFor(tkd.IBIG)
		if _, err := matching.ApplyEpochDelta(parsed); err == nil {
			t.Fatal("corrupted delta rows accepted")
		}
	}
}
