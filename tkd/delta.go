package tkd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitmapidx"
	"repro/internal/core"
	"repro/internal/data"
)

// Incremental epoch publication. AppendRows folds a batch of new objects
// into the previous epoch's artifacts instead of rebuilding them: the binned
// bitmap index is column-patched (bitmapidx.AppendRows) and the MaxScore
// queue recomputed tree-free from the patched index, so a small append
// publishes in O(delta · columns + N·d) instead of the O(N · columns)
// rebuild — with answers identical to a from-scratch build. The Dataset
// additionally keeps an append lineage (epoch → row count → fingerprint) so
// a replication leader can ship only the rows a follower is missing; any
// non-append mutation cuts the lineage and followers fall back to a full
// epoch transfer.

// Row is one object of an AppendRows batch; Missing (NaN) marks unobserved
// values.
type Row struct {
	ID     string
	Values []float64
}

// maxLineage bounds the append lineage ring. A follower more than this many
// append-publishes behind full-syncs instead; at the serving layer's publish
// cadence that means "offline for a while", where a full transfer is the
// right call anyway.
const maxLineage = 16

// epochRecord is one lineage entry: after epoch, the data was rows rows long
// and hashed to fp.
type epochRecord struct {
	epoch uint64
	rows  int
	fp    uint64
}

// AppendRows appends a batch of objects and immediately publishes the next
// epoch, incrementally when possible. It reports whether the publish was
// incremental (the previous epoch's binned index was patched rather than
// rebuilt); either way the new epoch's queue and binned index are ready when
// the call returns, and queries in flight finish on the old epoch. On error
// nothing is published and the dataset is unchanged.
func (d *Dataset) AppendRows(rows []Row) (patched bool, err error) {
	return d.appendRows(appendSpec{rows: rows})
}

// appendSpec parameterizes appendRows: at > 0 assigns the published epoch
// number (the follower path); verify checks the appended data's fingerprint
// against wantFP before publishing; requireBase demands the current epoch be
// exactly (baseEpoch, baseFP) — the delta-apply precondition.
type appendSpec struct {
	rows        []Row
	at          uint64
	wantFP      uint64
	verify      bool
	baseEpoch   uint64
	baseFP      uint64
	requireBase bool
}

func (d *Dataset) appendRows(sp appendSpec) (patched bool, err error) {
	if len(sp.rows) == 0 {
		return false, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	base := d.cur.Load()
	if sp.requireBase {
		if base == nil || base.epoch != sp.baseEpoch {
			return false, fmt.Errorf("tkd: delta base epoch %d does not match the current epoch", sp.baseEpoch)
		}
		if fp := d.epochFPLocked(base); fp != sp.baseFP {
			return false, fmt.Errorf("tkd: delta base fingerprint %016x does not match %016x", sp.baseFP, fp)
		}
	}

	if base == nil {
		// Staging is dirty: publish it first so there is a frozen base to
		// extend (and so a LoadIndex'd pending index becomes patchable).
		base = d.publishLocked()
	}

	// Extend off to the side: a capacity-clamped view of the frozen rows plus
	// the batch. Object headers are copied once (shallow — the frozen value
	// slices are shared), the base rows themselves are never touched, and a
	// mid-batch validation error discards the extension with no state change.
	src := base.ds
	next := src.Slice(0, src.Len())
	for _, r := range sp.rows {
		if _, err := next.Append(r.ID, r.Values); err != nil {
			return false, err
		}
	}
	fp := next.Fingerprint()
	if sp.verify && fp != sp.wantFP {
		return false, fmt.Errorf("tkd: appended data fingerprint %016x does not match expected %016x", fp, sp.wantFP)
	}

	// Incremental path: patch the published binned index and rebuild the
	// MaxScore queue from it without touching B+-trees. The value-granular
	// bitmap and trees (BIG-only artifacts) are dropped and rebuild lazily.
	var ns *snapshot
	if a := base.art.Load(); a.binned != nil {
		if ix, ok := bitmapidx.AppendRows(a.binned, next); ok {
			if b := d.cacheBudget.Load(); b > 0 {
				ix.SetCacheBudget(b)
			}
			ns = &snapshot{ds: next, bins: base.bins, rep: base.rep}
			ns.art.Store(&artifacts{queue: core.BuildMaxScoreQueueFromIndex(ix), binned: ix})
			patched = true
		}
	}
	if ns == nil {
		ns = &snapshot{ds: next, bins: d.bins, rep: d.indexRep}
		ns.art.Store(&artifacts{})
	}
	ns.epoch = d.nextEpochLocked(sp.at)
	d.staging = next
	d.shared = true
	d.pendingBinned = nil
	d.cur.Store(ns)
	base.release(ns.art.Load().binned)
	if !patched {
		// Rebuild path: pay the artifact build now so the publish is complete
		// either way, mirroring the patch path.
		ns.ensure(needQueue|needBinned, d)
	}
	d.recordLineageLocked(base, ns.epoch, next.Len(), fp)
	return patched, nil
}

// AppendImpact answers the standing-query skip test: could the `appended`
// most recently added rows of the current epoch change a standing top-k
// answer whose threshold (k-th ranked) score was tau at its last
// evaluation? It reports affects=false only when the index proves, for every
// new row p, that p cannot reach the answer (StandingEntryBound(p) < tau)
// AND no existing object's score changed (DominatorCeil(p) == 0 — scores
// count dominated objects, so appending p perturbs exactly the objects
// dominating it). Both bounds are conservative, so a skip is sound. ok
// reports whether the check could run at all; callers must re-evaluate when
// it is false (no binned index resident, or the row accounting is off).
func (d *Dataset) AppendImpact(appended, tau int) (affects, ok bool) {
	s := d.cur.Load()
	if s == nil {
		return false, false
	}
	a := s.art.Load()
	n := s.ds.Len()
	if a == nil || a.binned == nil || a.binned.Dataset().Len() != n {
		return false, false
	}
	if appended <= 0 || appended > n {
		return false, false
	}
	c := a.binned.NewCursor()
	for i := n - appended; i < n; i++ {
		if c.StandingEntryBound(i) >= tau {
			return true, true
		}
		if a.binned.DominatorCeil(i) > 0 {
			return true, true
		}
	}
	return false, true
}

// nextEpochLocked advances the epoch counter: at == 0 is the ordinary +1
// bump, a larger at adopts the external (leader's) number, and an at at or
// below the counter falls back to +1, keeping the counter strictly monotonic
// locally.
func (d *Dataset) nextEpochLocked(at uint64) uint64 {
	next := d.epoch.Add(1)
	if at > next {
		d.epoch.Store(at)
		next = at
	}
	return next
}

// epochFPLocked returns s's data fingerprint, served from the lineage when
// the epoch is on record (the common delta-apply case) instead of an O(N)
// rehash.
func (d *Dataset) epochFPLocked(s *snapshot) uint64 {
	for i := len(d.lineage) - 1; i >= 0; i-- {
		if r := &d.lineage[i]; r.epoch == s.epoch && r.rows == s.ds.Len() {
			return r.fp
		}
	}
	return s.ds.Fingerprint()
}

// recordLineageLocked extends the append lineage with the just-published
// epoch, seeding it with the base epoch when a new chain starts (so the base
// itself is a valid delta starting point).
func (d *Dataset) recordLineageLocked(base *snapshot, epoch uint64, rows int, fp uint64) {
	if len(d.lineage) == 0 && base != nil {
		d.lineage = append(d.lineage, epochRecord{epoch: base.epoch, rows: base.ds.Len(), fp: base.ds.Fingerprint()})
	}
	d.lineage = append(d.lineage, epochRecord{epoch: epoch, rows: rows, fp: fp})
	if len(d.lineage) > maxLineage {
		d.lineage = append(d.lineage[:0], d.lineage[len(d.lineage)-maxLineage:]...)
	}
}

// clearLineageLocked cuts the append lineage; every mutation that is not an
// append-publish calls it, so a lineage match proves the current data is a
// strict row extension of the matched epoch.
func (d *Dataset) clearLineageLocked() { d.lineage = nil }

// ---- Delta epoch streams ----

// A delta epoch stream ships only the rows appended since a base epoch the
// follower already holds, plus enough identity to make applying it exactly
// as safe as a full transfer:
//
//	magic     [8]byte  "TKDEPD1\n"
//	baseEpoch uint64   the follower's base epoch
//	baseFP    uint64   the base data fingerprint (apply refuses a divergent base)
//	epoch     uint64   the epoch the delta produces
//	fp        uint64   the produced data's fingerprint, verified before publishing
//	dlen      uint64   rows section length in bytes
//	rows      []byte   the appended rows in WriteCSV form
//
// No index section is shipped: the follower patches (or rebuilds) its own
// index locally, and the answer-equivalence of a patched index makes the
// result indistinguishable from having received the leader's. The final
// fingerprint check runs before anything is published, so a torn or
// mismatched delta can never install wrong bytes.

// epochDeltaMagic versions the delta stream.
var epochDeltaMagic = [8]byte{'T', 'K', 'D', 'E', 'P', 'D', '1', '\n'}

// EpochDeltaExport pins the rows appended between a follower's base epoch
// and the current one, ready to stream.
type EpochDeltaExport struct {
	baseEpoch, baseFP uint64
	epoch, fp         uint64
	rows              *data.Dataset // frozen view of the appended rows
}

// ExportEpochDelta pins a delta from (haveEpoch, haveFP) to the current
// epoch. It reports false when the lineage cannot prove the current data is
// a strict row extension of that base — the base epoch is unknown or too
// old, its fingerprint diverges, or a non-append mutation intervened — in
// which case the caller falls back to a full epoch export.
func (d *Dataset) ExportEpochDelta(haveEpoch, haveFP uint64) (*EpochDeltaExport, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.cur.Load()
	if cur == nil || cur.epoch <= haveEpoch {
		return nil, false
	}
	var haveRec, curRec *epochRecord
	for i := range d.lineage {
		switch r := &d.lineage[i]; r.epoch {
		case haveEpoch:
			haveRec = r
		case cur.epoch:
			curRec = r
		}
	}
	if haveRec == nil || curRec == nil || haveRec.fp != haveFP {
		return nil, false
	}
	if curRec.rows != cur.ds.Len() || haveRec.rows >= curRec.rows {
		return nil, false
	}
	return &EpochDeltaExport{
		baseEpoch: haveEpoch,
		baseFP:    haveFP,
		epoch:     cur.epoch,
		fp:        curRec.fp,
		rows:      cur.ds.Slice(haveRec.rows, curRec.rows),
	}, true
}

// Epoch returns the epoch the delta produces when applied.
func (x *EpochDeltaExport) Epoch() uint64 { return x.epoch }

// Fingerprint returns the data fingerprint after the delta is applied.
func (x *EpochDeltaExport) Fingerprint() uint64 { return x.fp }

// Rows returns the number of appended rows the delta carries.
func (x *EpochDeltaExport) Rows() int { return x.rows.Len() }

// Write streams the pinned delta.
func (x *EpochDeltaExport) Write(w io.Writer) error {
	var buf bytes.Buffer
	if err := x.rows.WriteCSV(&buf); err != nil {
		return err
	}
	if _, err := w.Write(epochDeltaMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint64{x.baseEpoch, x.baseFP, x.epoch, x.fp, uint64(buf.Len())} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// EpochDelta is a parsed delta epoch stream.
type EpochDelta struct {
	BaseEpoch       uint64
	BaseFingerprint uint64
	Epoch           uint64
	Fingerprint     uint64
	rows            *data.Dataset
}

// Rows returns the number of appended rows the delta carries.
func (x *EpochDelta) Rows() int { return x.rows.Len() }

// ReadEpochDelta parses a stream written by EpochDeltaExport.Write.
func ReadEpochDelta(r io.Reader) (*EpochDelta, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("tkd: delta stream header: %w", err)
	}
	if magic != epochDeltaMagic {
		return nil, fmt.Errorf("tkd: not a delta epoch stream (bad magic %q)", magic[:])
	}
	var baseEpoch, baseFP, epoch, fp, dlen uint64
	for _, v := range []*uint64{&baseEpoch, &baseFP, &epoch, &fp, &dlen} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("tkd: delta stream header: %w", err)
		}
	}
	if epoch == 0 || epoch <= baseEpoch {
		return nil, fmt.Errorf("tkd: delta stream epoch %d does not advance base %d", epoch, baseEpoch)
	}
	if dlen == 0 || dlen > maxEpochData {
		return nil, fmt.Errorf("tkd: delta stream rows section of %d bytes is out of range", dlen)
	}
	raw := make([]byte, dlen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("tkd: delta stream rows section: %w", err)
	}
	rows, err := data.ReadCSV(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("tkd: delta stream rows section: %w", err)
	}
	if rows.Len() == 0 {
		return nil, fmt.Errorf("tkd: delta stream carries no rows")
	}
	return &EpochDelta{BaseEpoch: baseEpoch, BaseFingerprint: baseFP, Epoch: epoch, Fingerprint: fp, rows: rows}, nil
}

// ApplyEpochDelta appends the delta's rows and publishes at the delta's
// epoch number. The current epoch must be exactly the delta's base (number
// and fingerprint) and the resulting data must hash to the delta's
// fingerprint — all verified before anything is published, so a stale or
// divergent delta fails cleanly and the caller full-syncs instead. It
// reports whether the publish patched the index incrementally.
func (d *Dataset) ApplyEpochDelta(x *EpochDelta) (patched bool, err error) {
	rows := make([]Row, x.rows.Len())
	for i := range rows {
		o := x.rows.Obj(i)
		rows[i] = Row{ID: o.ID, Values: o.Values}
	}
	return d.appendRows(appendSpec{
		rows:        rows,
		at:          x.Epoch,
		wantFP:      x.Fingerprint,
		verify:      true,
		baseEpoch:   x.BaseEpoch,
		baseFP:      x.BaseFingerprint,
		requireBase: true,
	})
}
