package tkd_test

import (
	"sync"
	"testing"

	"repro/tkd"
)

// TestConcurrentTopKSharedDataset exercises the server-shaped workload: many
// goroutines querying one shared Dataset with mixed k, algorithm and worker
// settings, without a prior Prepare — so the mutex-guarded lazy index
// construction itself is raced. Run under -race (CI does) this is the
// library's thread-safety contract test; every answer must equal the serial
// answer for the same parameters.
func TestConcurrentTopKSharedDataset(t *testing.T) {
	shared := tkd.GenerateAC(800, 4, 30, 0.25, 42)
	// An independent, identically generated copy provides the serial ground
	// truth without touching the shared dataset's state.
	ref := tkd.GenerateAC(800, 4, 30, 0.25, 42)

	type query struct {
		k       int
		alg     tkd.Algorithm
		workers int
	}
	queries := []query{
		{3, tkd.IBIG, 1}, {5, tkd.IBIG, 2}, {8, tkd.IBIG, 0},
		{3, tkd.BIG, 1}, {5, tkd.BIG, 3},
		{4, tkd.UBB, 1}, {7, tkd.UBB, 2},
		{4, tkd.ESB, 1}, {6, tkd.ESB, 4},
		{5, tkd.Naive, 2},
	}
	want := make([]tkd.Result, len(queries))
	for i, q := range queries {
		res, err := ref.TopK(q.k, tkd.WithAlgorithm(q.alg))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < len(queries)*rounds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			got, err := shared.TopK(q.k, tkd.WithAlgorithm(q.alg), tkd.WithWorkers(q.workers))
			if err != nil {
				t.Errorf("query %+v: %v", q, err)
				return
			}
			exp := want[g%len(queries)]
			if len(got.Items) != len(exp.Items) {
				t.Errorf("query %+v: %d items, want %d", q, len(got.Items), len(exp.Items))
				return
			}
			for i := range got.Items {
				if got.Items[i] != exp.Items[i] {
					t.Errorf("query %+v: item %d = %+v, want %+v", q, i, got.Items[i], exp.Items[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentPrepare races Prepare with queries; both must be no-ops on
// top of an already-built state and never corrupt it.
func TestConcurrentPrepare(t *testing.T) {
	ds := tkd.GenerateIND(400, 4, 25, 0.2, 7)
	want, err := ds.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds.Prepare()
			got, err := ds.TopK(5)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range got.Items {
				if got.Items[i] != want.Items[i] {
					t.Errorf("item %d = %+v, want %+v", i, got.Items[i], want.Items[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheBudgetPlumbing checks that SetCacheBudget reaches the compressed
// index and CacheStats surfaces live counters and evictions under a budget
// squeezed below the working set. The index is pinned to pure CONCISE: the
// default adaptive representation stores these mid-density columns dense
// and would leave the cache legitimately cold.
func TestCacheBudgetPlumbing(t *testing.T) {
	ds := tkd.GenerateIND(600, 5, 30, 0.2, 13)
	ds.SetIndexRepresentation(tkd.ConciseIndex)
	ds.SetCacheBudget(1 << 10) // far below the column population
	if _, err := ds.TopK(10); err != nil {
		t.Fatal(err)
	}
	st := ds.CacheStats()
	if st.Budget != 1<<10 {
		t.Fatalf("budget = %d, want %d", st.Budget, 1<<10)
	}
	if st.Misses == 0 {
		t.Fatal("no cache misses recorded by an IBIG query")
	}
	if st.Evicted == 0 {
		t.Fatal("no evictions under a 1 KiB budget")
	}
	if st.Bytes > st.Budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
}

// TestIndexRepresentationKnob pins the adaptive default and the
// SetIndexRepresentation switch: the representation counters flow for the
// adaptive index, switching publishes a fresh epoch, and the answer set is
// identical under every representation.
func TestIndexRepresentationKnob(t *testing.T) {
	ds := tkd.GenerateIND(800, 4, 50, 0.02, 21)
	want, err := ds.TopK(8)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.CacheStats()
	if st.DenseCols+st.CompressedCols+st.SparseCols == 0 {
		t.Fatal("adaptive index recorded no served columns")
	}
	if st.CompressedCols != st.NativeKernel+st.Fallback {
		t.Fatalf("compressed %d != native %d + fallback %d", st.CompressedCols, st.NativeKernel, st.Fallback)
	}
	for _, rep := range []tkd.IndexRepresentation{tkd.WAHIndex, tkd.ConciseIndex} {
		epoch := ds.Epoch()
		ds.SetIndexRepresentation(rep)
		if ds.Epoch() == epoch {
			t.Fatalf("representation %d: no epoch published", rep)
		}
		got, err := ds.TopK(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("representation %d: %d items, want %d", rep, len(got.Items), len(want.Items))
		}
		for i, it := range got.Items {
			if it != want.Items[i] {
				t.Fatalf("representation %d item %d: %+v, want %+v", rep, i, it, want.Items[i])
			}
		}
	}
}
