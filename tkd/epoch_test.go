package tkd_test

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/tkd"
)

// exportStream publishes ds (via a query) and returns its epoch stream.
func exportStream(t *testing.T, ds *tkd.Dataset, includeIndex bool) ([]byte, *tkd.EpochExport) {
	t.Helper()
	if _, err := ds.TopK(5); err != nil {
		t.Fatal(err)
	}
	x := ds.ExportEpoch()
	var buf bytes.Buffer
	if err := x.Write(&buf, includeIndex); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), x
}

func TestEpochExportImportRoundTrip(t *testing.T) {
	ds := tkd.GenerateIND(300, 4, 20, 0.2, 7)
	raw, x := exportStream(t, ds, true)
	if x.Epoch() != ds.Epoch() || x.Fingerprint() != ds.Fingerprint() {
		t.Fatalf("export pins epoch=%d fp=%x, dataset has epoch=%d fp=%x",
			x.Epoch(), x.Fingerprint(), ds.Epoch(), ds.Fingerprint())
	}
	fresh, epoch, err := tkd.ImportEpoch(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != x.Epoch() {
		t.Fatalf("imported epoch %d, want %d", epoch, x.Epoch())
	}
	if fresh.Fingerprint() != ds.Fingerprint() {
		t.Fatalf("imported fingerprint %x, want %x", fresh.Fingerprint(), ds.Fingerprint())
	}
	want, err := ds.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("imported answer %v, want %v", got.Items, want.Items)
	}
	// The binned index rode the stream: serving the import must not have
	// built one, and the first publish must land on the leader's number.
	if n := fresh.IndexBuilds(); n != 0 {
		t.Fatalf("import rebuilt the index %d times, want 0 (shipped in-stream)", n)
	}
	if fresh.Epoch() != epoch {
		t.Fatalf("follower epoch %d after first publish, want the leader's %d", fresh.Epoch(), epoch)
	}
}

func TestEpochStreamWithoutIndexSection(t *testing.T) {
	ds := tkd.GenerateIND(200, 3, 15, 0.2, 11)
	raw, _ := exportStream(t, ds, false)
	fresh, _, err := tkd.ImportEpoch(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.TopK(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.TopK(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("data-only import answers %v, want %v", got.Items, want.Items)
	}
	if fresh.IndexBuilds() == 0 {
		t.Fatal("data-only stream cannot supply an index; a build was expected")
	}
}

func TestEpochStreamCorruptionRejected(t *testing.T) {
	ds := tkd.GenerateIND(200, 3, 15, 0.2, 13)
	raw, _ := exportStream(t, ds, true)

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), raw...))
		if _, _, err := tkd.ImportEpoch(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt stream imported cleanly", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("zero epoch", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 0)
		return b
	})
	// Flip the last digit of the data section (a value of the last row):
	// either the CSV no longer parses or the rebuilt fingerprint misses the
	// header — both must fail the import.
	corrupt("flipped data byte", func(b []byte) []byte {
		dlen := binary.LittleEndian.Uint64(b[25:])
		for i := 33 + int(dlen) - 1; i >= 33; i-- {
			if b[i] >= '0' && b[i] <= '9' {
				b[i] ^= 0x01
				return b
			}
		}
		t.Fatal("no digit found in the data section")
		return b
	})
	corrupt("truncated index section", func(b []byte) []byte { return b[:len(b)-16] })
	corrupt("truncated header", func(b []byte) []byte { return b[:20] })
	if _, _, err := tkd.ImportEpoch(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream imported cleanly")
	}
}

func TestReplaceFromAtAlignsEpochNumbering(t *testing.T) {
	d := tkd.GenerateIND(100, 3, 10, 0.2, 3)
	if _, err := d.TopK(3); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch %d after first publish, want 1", d.Epoch())
	}
	// A forward-assigned number moves the counter to the leader's value.
	d.ReplaceFromAt(tkd.GenerateIND(100, 3, 10, 0.2, 4), 10)
	if d.Epoch() != 10 {
		t.Fatalf("epoch %d after ReplaceFromAt(10), want 10", d.Epoch())
	}
	// A number at or below the counter falls back to the ordinary bump:
	// locally the counter stays strictly monotonic.
	d.ReplaceFromAt(tkd.GenerateIND(100, 3, 10, 0.2, 5), 3)
	if d.Epoch() != 11 {
		t.Fatalf("epoch %d after non-forward ReplaceFromAt, want 11", d.Epoch())
	}
	// Plain ReplaceFrom continues from wherever the counter stands.
	d.ReplaceFrom(tkd.GenerateIND(100, 3, 10, 0.2, 6))
	if d.Epoch() != 12 {
		t.Fatalf("epoch %d after ReplaceFrom, want 12", d.Epoch())
	}
}
