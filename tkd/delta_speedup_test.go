package tkd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/tkd"
)

// speedupBatch builds an in-domain append batch at the acceptance scale.
func speedupBatch(n, dim, card int, seed int64) []tkd.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tkd.Row, n)
	for i := range rows {
		vals := make([]float64, dim)
		for d := range vals {
			if rng.Float64() < 0.02 {
				vals[d] = tkd.Missing
			} else {
				vals[d] = float64(rng.Intn(card))
			}
		}
		vals[rng.Intn(dim)] = float64(rng.Intn(card))
		rows[i] = tkd.Row{ID: fmt.Sprintf("s%d-%d", seed, i), Values: vals}
	}
	return rows
}

// TestDeltaPublishSpeedup gates the point of the incremental path: at 20k
// rows, publishing a 64-row append by patching must beat the append+rebuild
// publish by at least 5x. (The observed ratio is far higher; 5x keeps the
// gate robust on noisy CI hosts.) Correctness of the patched artifacts is
// covered by the equivalence tests; this test only pins the asymptotics.
func TestDeltaPublishSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup gate skipped in -short mode")
	}
	const n, dim, card, batch = 20_000, 5, 64, 64
	mk := func() *tkd.Dataset {
		ds := tkd.GenerateIND(n, dim, card, 0.02, 31)
		ds.PrepareFor(tkd.IBIG)
		return ds
	}

	delta := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		ds := mk()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%64 == 0 {
				ds = mk() // keep the base near 20k rows
			}
			rows := speedupBatch(batch, dim, card, int64(i))
			b.StartTimer()
			patched, err := ds.AppendRows(rows)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if !patched {
				b.Fatal("append fell back to a rebuild")
			}
		}
	})

	rebuild := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		ds := mk()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%64 == 0 {
				ds = mk()
			}
			rows := speedupBatch(batch, dim, card, int64(i))
			b.StartTimer()
			for _, r := range rows {
				if err := ds.Append(r.ID, r.Values...); err != nil {
					b.Fatal(err)
				}
			}
			ds.PrepareFor(tkd.IBIG)
			b.StopTimer()
		}
	})

	dns, rns := delta.NsPerOp(), rebuild.NsPerOp()
	t.Logf("delta publish %d ns/op, rebuild publish %d ns/op (%.1fx)",
		dns, rns, float64(rns)/float64(dns))
	if dns*5 > rns {
		t.Fatalf("delta publish (%d ns/op) not 5x faster than rebuild (%d ns/op)", dns, rns)
	}
}
