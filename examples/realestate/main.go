// Real-estate example: the paper's Zillow workload — find the listings that
// dominate the most others on bedrooms, bathrooms, living area, lot area
// and price, with ~14% of the attributes missing.
//
// Zillow's five attributes have wildly different domain sizes (a handful of
// bedroom counts vs ~10^5 distinct prices), which is exactly the regime
// where the value-granular bitmap index of BIG explodes and IBIG's
// per-dimension binning (§4.4) pays off. The example sweeps the bin count
// of the high-cardinality dimension and prints the space/time trade-off of
// Fig. 11(c), including the Eq. (8) optimum.
//
//	go run ./examples/realestate
package main

import (
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/tkd"
)

func main() {
	// 20K listings keep the value-granular BIG index laptop-sized; the
	// binning behaviour is identical at full scale.
	ds := tkd.SimulateZillow(90210, 20_000)
	fmt.Printf("Zillow-shaped dataset: %d listings x %d attributes, %.1f%% missing\n",
		ds.Len(), ds.Dim(), 100*ds.MissingRate())
	fmt.Printf("Eq. (8) optimal bin count for this dataset: ξ* = %d\n\n",
		tkd.OptimalBins(ds.Len(), ds.MissingRate()))

	const k = 8
	// Sweep the bin count of the two huge dimensions (lot area, price)
	// while keeping the small domains value-granular, as the paper does.
	for _, xi := range []int{100, 1000, 3000} {
		start := time.Now()
		var st tkd.Stats
		res, err := ds.TopK(k,
			tkd.WithBins(6, 10, 35, xi, xi),
			tkd.WithStats(&st))
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("ξ=%-5d best listing %-7s (score %5d) | total %.2fs | scored %d, H1/H2/H3 pruned %d/%d/%d\n",
			xi, res.Items[0].ID, res.Items[0].Score, elapsed.Seconds(),
			st.Scored, st.PrunedH1, st.PrunedH2, st.PrunedH3)
	}

	// Final answer set at the default (optimal) binning.
	res, err := ds.TopK(k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntop-%d dominating listings:\n", k)
	for rank, it := range res.Items {
		bedsStr := "? bd"
		if beds, ok := ds.Value(it.Index, 0); ok {
			bedsStr = fmt.Sprintf("%g bd", beds)
		}
		priceStr := "unlisted"
		if price, ok := ds.Value(it.Index, 4); ok {
			priceStr = fmt.Sprintf("$%.0f", price)
		}
		fmt.Printf("  %d. %-7s dominates %5d listings (%s, %s)\n",
			rank+1, it.ID, it.Score, bedsStr, priceStr)
	}
}

// fatal reports err through the structured logger and exits non-zero.
func fatal(err error) {
	slog.Error("example failed", "err", err)
	os.Exit(1)
}
