// Quickstart: the paper's running example (Fig. 3) through the public API.
//
// Twenty 4-dimensional objects, many with missing values; the T2D query
// returns C2 and A2, each dominating 16 of the other 19 objects — exactly
// the walk-through of the paper's §4.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/tkd"
)

func main() {
	M := tkd.Missing
	ds := tkd.NewDataset(4)

	rows := []struct {
		id string
		v  []float64
	}{
		{"A1", []float64{M, 3, 1, 3}}, {"A2", []float64{M, 1, 2, 1}},
		{"A3", []float64{M, 1, 3, 4}}, {"A4", []float64{M, 7, 4, 5}},
		{"A5", []float64{M, 4, 8, 3}}, {"B1", []float64{M, M, 1, 2}},
		{"B2", []float64{M, M, 3, 1}}, {"B3", []float64{M, M, 4, 9}},
		{"B4", []float64{M, M, 3, 7}}, {"B5", []float64{M, M, 7, 4}},
		{"C1", []float64{2, M, M, 3}}, {"C2", []float64{2, M, M, 1}},
		{"C3", []float64{3, M, M, 2}}, {"C4", []float64{3, M, M, 3}},
		{"C5", []float64{3, M, M, 4}}, {"D1", []float64{3, 5, M, 2}},
		{"D2", []float64{2, 1, M, 4}}, {"D3", []float64{2, 4, M, 1}},
		{"D4", []float64{4, 4, M, 5}}, {"D5", []float64{5, 5, M, 4}},
	}
	for _, r := range rows {
		if err := ds.Append(r.id, r.v...); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("dataset: %d objects, %d dimensions, %.0f%% missing\n\n",
		ds.Len(), ds.Dim(), 100*ds.MissingRate())

	// A top-2 dominating query with the default algorithm (IBIG).
	res, err := ds.TopK(2)
	if err != nil {
		fatal(err)
	}
	fmt.Println("T2D answer:")
	for rank, it := range res.Items {
		fmt.Printf("  %d. %s dominates %d objects\n", rank+1, it.ID, it.Score)
	}

	// The same query under every algorithm, with work counters.
	fmt.Println("\nalgorithm comparison:")
	for _, alg := range []tkd.Algorithm{tkd.Naive, tkd.ESB, tkd.UBB, tkd.BIG, tkd.IBIG} {
		var st tkd.Stats
		r, err := ds.TopK(2, tkd.WithAlgorithm(alg), tkd.WithStats(&st))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-5v -> %v (scored %d of %d objects; H1/H2/H3 pruned %d/%d/%d)\n",
			alg, r.IDs(), st.Scored, ds.Len(), st.PrunedH1, st.PrunedH2, st.PrunedH3)
	}

	// Dominance is not transitive on incomplete data: inspect pairs directly.
	fmt.Println("\ndominance spot checks:")
	fmt.Printf("  C2 dominates C1: %v\n", ds.Dominates(11, 10))
	fmt.Printf("  C1 dominates C2: %v\n", ds.Dominates(10, 11))
	fmt.Printf("  score(C2) = %d\n", ds.Score(11))
}

// fatal reports err through the structured logger and exits non-zero.
func fatal(err error) {
	slog.Error("example failed", "err", err)
	os.Exit(1)
}
