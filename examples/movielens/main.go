// MovieLens example: the paper's motivating scenario (§1) — find the k most
// popular movies in a recommender system where each movie is rated by only
// a handful of audiences (95% of the ratings matrix is missing).
//
// A movie that dominates many others is one that no shared audience rates
// lower and some shared audience rates higher — exactly the paper's argument
// for why TKD beats both skylines (uncontrollable output size) and simple
// averages (ignores who rated what) on this data.
//
//	go run ./examples/movielens
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/tkd"
)

func main() {
	// The simulator reproduces the paper's MovieLens shape: 3,700 movies,
	// 60 audiences, ratings 1..5, 95% missing, already converted to the
	// library's smaller-is-better convention.
	ds := tkd.SimulateMovieLens(2016)
	fmt.Printf("MovieLens-shaped dataset: %d movies x %d audiences, %.1f%% missing\n\n",
		ds.Len(), ds.Dim(), 100*ds.MissingRate())

	// The paper's §5.1 finding for MovieLens: with a rating domain of just
	// five values, two bins per dimension are enough for IBIG.
	var st tkd.Stats
	res, err := ds.TopK(10, tkd.WithBins(2), tkd.WithStats(&st))
	if err != nil {
		fatal(err)
	}
	fmt.Println("top-10 most dominating movies:")
	for rank, it := range res.Items {
		fmt.Printf("  %2d. %-6s dominates %4d movies\n", rank+1, it.ID, it.Score)
	}
	fmt.Printf("\nIBIG work: scored %d of %d movies (H1 pruned %d, H2 %d, H3 %d)\n",
		st.Scored, ds.Len(), st.PrunedH1, st.PrunedH2, st.PrunedH3)

	// Compare against UBB on the same data: on MovieLens the bitmap bound
	// is loose (95% missing), so the gap between UBB and IBIG narrows — the
	// paper's Fig. 18(a) observation.
	var stUBB tkd.Stats
	if _, err := ds.TopK(10, tkd.WithAlgorithm(tkd.UBB), tkd.WithStats(&stUBB)); err != nil {
		fatal(err)
	}
	fmt.Printf("UBB work:  scored %d of %d movies (H1 pruned %d)\n",
		stUBB.Scored, ds.Len(), stUBB.PrunedH1)

	// MFD-weighted variant (§3): discount dominance evidence from
	// half-observed audiences by λ=0.5, weighting all audiences equally.
	weights := make([]float64, ds.Dim())
	for i := range weights {
		weights[i] = 1
	}
	items, err := ds.TopKMFD(5, weights, 0.5)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\ntop-5 under MFD-weighted scoring (λ=0.5):")
	for rank, it := range items {
		fmt.Printf("  %d. %-6s weighted score %.1f\n", rank+1, it.ID, it.Weight)
	}
}

// fatal reports err through the structured logger and exits non-zero.
func fatal(err error) {
	slog.Error("example failed", "err", err)
	os.Exit(1)
}
