// NBA example: rank players by how many other players they dominate across
// games played, minutes, points and offensive rebounds, with 20% of the
// statistics missing — the paper's second real workload.
//
// NBA's attributes are strongly correlated (long careers mean more of
// everything), which makes the MaxScore upper bound tight: UBB alone prunes
// almost the whole dataset, and the bitmap algorithms add little — the
// paper's §5.2 observation, visible in the work counters printed below.
//
// The example also reproduces a Table 4 row: how much does the answer
// change if we instead impute the missing statistics with matrix
// factorization and query the completed data?
//
//	go run ./examples/nba
package main

import (
	"fmt"
	"log/slog"
	"os"

	"repro/tkd"
)

func main() {
	ds := tkd.SimulateNBA(1977)
	fmt.Printf("NBA-shaped dataset: %d players x %d attributes, %.1f%% missing\n\n",
		ds.Len(), ds.Dim(), 100*ds.MissingRate())

	const k = 10
	fmt.Printf("top-%d dominating players per algorithm:\n", k)
	ds.Prepare() // pay preprocessing once
	for _, alg := range []tkd.Algorithm{tkd.UBB, tkd.BIG, tkd.IBIG} {
		var st tkd.Stats
		res, err := ds.TopK(k, tkd.WithAlgorithm(alg), tkd.WithStats(&st))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-4v best=%s (score %d) | scored %d of %d, H1/H2/H3 pruned %d/%d/%d\n",
			alg, res.Items[0].ID, res.Items[0].Score,
			st.Scored, ds.Len(), st.PrunedH1, st.PrunedH2, st.PrunedH3)
	}

	// Table 4 style comparison: answers on incomplete data vs answers after
	// missing-value inference (8 factors, 50 SGD sweeps, as in the paper).
	fmt.Println("\nincomplete-data answers vs imputation-based answers:")
	completed := ds.Impute(8, 50, 7)
	for _, kk := range []int{4, 16} {
		a, err := ds.TopK(kk)
		if err != nil {
			fatal(err)
		}
		b, err := completed.TopK(kk)
		if err != nil {
			fatal(err)
		}
		dj := tkd.JaccardDistance(a, b)
		fmt.Printf("  k=%-3d Jaccard distance %.3f (shares >k/2 answers: %v)\n",
			kk, dj, dj < 2.0/3)
	}
}

// fatal reports err through the structured logger and exits non-zero.
func fatal(err error) {
	slog.Error("example failed", "err", err)
	os.Exit(1)
}
