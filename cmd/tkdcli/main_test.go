package main

import (
	"bytes"
	"strings"
	"testing"
)

// sampleCSV is the paper's Fig. 3 dataset in the CLI's input format.
const sampleCSV = `id,v1,v2,v3,v4
A1,-,3,1,3
A2,-,1,2,1
A3,-,1,3,4
A4,-,7,4,5
A5,-,4,8,3
B1,-,-,1,2
B2,-,-,3,1
B3,-,-,4,9
B4,-,-,3,7
B5,-,-,7,4
C1,2,-,-,3
C2,2,-,-,1
C3,3,-,-,2
C4,3,-,-,3
C5,3,-,-,4
D1,3,5,-,2
D2,2,1,-,4
D3,2,4,-,1
D4,4,4,-,5
D5,5,5,-,4
`

func TestRunAnswersT2D(t *testing.T) {
	for _, alg := range []string{"Naive", "ESB", "UBB", "BIG", "IBIG"} {
		var out, errb bytes.Buffer
		code := run([]string{"-k", "2", "-alg", alg, "-stats", "-"},
			strings.NewReader(sampleCSV), &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d: %s", alg, code, errb.String())
		}
		s := out.String()
		if !strings.Contains(s, ",16") {
			t.Fatalf("%s output lacks score 16:\n%s", alg, s)
		}
		if !strings.Contains(s, "A2") || !strings.Contains(s, "C2") {
			t.Fatalf("%s answer wrong:\n%s", alg, s)
		}
		if !strings.Contains(s, "# candidates=") {
			t.Fatalf("%s: -stats produced no statistics line", alg)
		}
	}
}

// TestRunWorkersMatchesSerial exercises the -workers flag: the parallel
// engine must produce the exact ranked answer the serial run prints, for
// every algorithm.
func TestRunWorkersMatchesSerial(t *testing.T) {
	for _, alg := range []string{"Naive", "ESB", "UBB", "BIG", "IBIG"} {
		var serial, parallel, errb bytes.Buffer
		if code := run([]string{"-k", "2", "-alg", alg, "-"},
			strings.NewReader(sampleCSV), &serial, &errb); code != 0 {
			t.Fatalf("%s serial: exit %d: %s", alg, code, errb.String())
		}
		if code := run([]string{"-k", "2", "-alg", alg, "-workers", "3", "-"},
			strings.NewReader(sampleCSV), &parallel, &errb); code != 0 {
			t.Fatalf("%s parallel: exit %d: %s", alg, code, errb.String())
		}
		// Strip the timing line (wall-clock differs); answer rows must match.
		strip := func(s string) string {
			var keep []string
			for _, line := range strings.Split(s, "\n") {
				if !strings.HasPrefix(line, "# preprocessing") {
					keep = append(keep, line)
				}
			}
			return strings.Join(keep, "\n")
		}
		if strip(serial.String()) != strip(parallel.String()) {
			t.Fatalf("%s: parallel output differs:\nserial:\n%s\nparallel:\n%s",
				alg, serial.String(), parallel.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-workers", "-2", "-"}, strings.NewReader(sampleCSV), &out, &errb); code != 2 {
		t.Fatalf("negative -workers: exit %d", code)
	}
}

func TestRunNegate(t *testing.T) {
	csv := "id,v1,v2\nbad,1,1\ngood,5,5\n"
	var out, errb bytes.Buffer
	code := run([]string{"-k", "1", "-negate", "-"}, strings.NewReader(csv), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "1,good,1") {
		t.Fatalf("negated winner wrong:\n%s", out.String())
	}
}

func TestRunCustomBins(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-k", "2", "-bins", "2", "-"}, strings.NewReader(sampleCSV), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), ",16") {
		t.Fatalf("binned answer wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("missing arg: exit %d", code)
	}
	if code := run([]string{"-alg", "Quantum", "-"}, strings.NewReader(sampleCSV), &out, &errb); code != 2 {
		t.Fatalf("bad algorithm: exit %d", code)
	}
	if code := run([]string{"-"}, strings.NewReader("not a csv"), &out, &errb); code != 1 {
		t.Fatalf("bad csv: exit %d", code)
	}
	if code := run([]string{"/does/not/exist.csv"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}
