// Command tkdcli answers top-k dominating queries over incomplete CSV data.
//
// The input format is the one datagen emits: a header "id,v1,...,vd" and one
// row per object with "-" (or empty) marking missing values. Smaller values
// are considered better; pass -negate for rating-style data.
//
// Usage:
//
//	tkdcli -k 5 -alg IBIG data.csv
//	tkdcli -k 5 -alg IBIG -workers 0 data.csv      # parallel scoring
//	datagen -dist nba | tkdcli -k 10 -alg UBB -stats -negate=false -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tkdcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k       = fs.Int("k", 10, "number of answers")
		algStr  = fs.String("alg", "IBIG", "algorithm: Naive, ESB, UBB, BIG, IBIG")
		stats   = fs.Bool("stats", false, "print pruning statistics")
		negate  = fs.Bool("negate", false, "negate values (use when larger is better)")
		bins    = fs.Int("bins", 0, "bins per dimension for IBIG (0 = Eq. 8 optimum)")
		workers = fs.Int("workers", 1, "parallel scoring goroutines (1 = serial, 0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tkdcli [flags] <data.csv | ->")
		fs.PrintDefaults()
		return 2
	}

	alg, err := core.ParseAlgorithm(*algStr)
	if err != nil {
		fmt.Fprintln(stderr, "tkdcli:", err)
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "tkdcli: -workers must be >= 0, got %d\n", *workers)
		return 2
	}

	r := stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, "tkdcli:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	ds, err := data.ReadCSV(r)
	if err != nil {
		fmt.Fprintln(stderr, "tkdcli:", err)
		return 1
	}
	if *negate {
		ds.Negate()
	}

	var binSpec []int
	if *bins > 0 {
		binSpec = []int{*bins}
	}
	prepStart := time.Now()
	pre := core.Preprocess(ds, binSpec)
	prepTime := time.Since(prepStart)

	queryStart := time.Now()
	res, st := core.RunWorkers(alg, ds, *k, pre, *workers)
	queryTime := time.Since(queryStart)

	fmt.Fprintf(stdout, "# %s on %d objects x %d dims (missing rate %.1f%%)\n",
		alg, ds.Len(), ds.Dim(), 100*ds.MissingRate())
	fmt.Fprintf(stdout, "# preprocessing %.3fs, query %.3fs\n", prepTime.Seconds(), queryTime.Seconds())
	fmt.Fprintln(stdout, "rank,id,score")
	for i, it := range res.Items {
		fmt.Fprintf(stdout, "%d,%s,%d\n", i+1, it.ID, it.Score)
	}
	if *stats {
		fmt.Fprintf(stdout, "# candidates=%d scored=%d prunedH1=%d prunedH2=%d prunedH3=%d skyband=%d comparisons=%d\n",
			st.Candidates, st.Scored, st.PrunedH1, st.PrunedH2, st.PrunedH3, st.PrunedSkyband, st.Comparisons)
	}
	return 0
}
