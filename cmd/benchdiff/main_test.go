package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const plainBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFusedKernels/IntersectCount            	     100	      6567 ns/op	       0 B/op	       0 allocs/op
BenchmarkFusedKernels/Cursor/QP-8               	     100	      6047 ns/op	    2312 B/op	       1 allocs/op
BenchmarkCompressedKernels/clustered1%/dispatch 	     100	         1.000 nativeDispatch	       0 B/op	       0 allocs/op
PASS
`

func TestParsePlainBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(plainBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	ic := got["BenchmarkFusedKernels/IntersectCount"]
	if ic.NsOp != 6567 || ic.AllocsOp != 0 {
		t.Fatalf("IntersectCount = %+v", ic)
	}
	// The -8 GOMAXPROCS suffix must be stripped so runners with different
	// core counts compare against one baseline.
	qp, ok := got["BenchmarkFusedKernels/Cursor/QP"]
	if !ok || qp.AllocsOp != 1 {
		t.Fatalf("QP = %+v ok=%v", qp, ok)
	}
	// Custom-metric-only lines keep their allocs but record no ns/op.
	disp := got["BenchmarkCompressedKernels/clustered1%/dispatch"]
	if disp.NsOp >= 0 || disp.AllocsOp != 0 {
		t.Fatalf("dispatch = %+v", disp)
	}
}

func TestParseTestJSONStream(t *testing.T) {
	stream := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkFusedKernels/IntersectCount \t     100\t      6567 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`
	got, err := parseBenchOutput(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkFusedKernels/IntersectCount"].NsOp != 6567 {
		t.Fatalf("parsed %v", got)
	}
}

// TestParseTestJSONSplitEvents covers the stream shape go test -json emits
// for benchmarks since Go attributes output to a Test field: the name event
// and the numbers event arrive separately, with the result line starting at
// the iteration count.
func TestParseTestJSONSplitEvents(t *testing.T) {
	stream := `{"Action":"start","Package":"repro"}
{"Action":"run","Package":"repro","Test":"BenchmarkTraceOverhead/off"}
{"Action":"output","Package":"repro","Test":"BenchmarkTraceOverhead/off","Output":"BenchmarkTraceOverhead/off\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkTraceOverhead/off","Output":"    1000\t        83.0 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkTraceOverhead/off","Output":"--- BENCH: BenchmarkTraceOverhead/off-8\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`
	got, err := parseBenchOutput(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := got["BenchmarkTraceOverhead/off"]
	if !ok || res.NsOp != 83.0 || res.AllocsOp != 0 {
		t.Fatalf("parsed %v", got)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]BenchResult{
		"A": {NsOp: 100, AllocsOp: 2},
		"B": {NsOp: 100, AllocsOp: 2},
		"C": {NsOp: 100, AllocsOp: 2},
	}
	cur := map[string]BenchResult{
		"A": {NsOp: 199, AllocsOp: 2}, // within 2x, same allocs: ok
		"B": {NsOp: 201, AllocsOp: 2}, // ns regression
		"C": {NsOp: 90, AllocsOp: 3},  // allocs regression
		"D": {NsOp: 5, AllocsOp: 0},   // new benchmark
	}
	vs := compare(base, cur, 2.0, 0)
	byName := map[string]verdict{}
	for _, v := range vs {
		byName[v.name] = v
	}
	if v := byName["A"]; v.nsRegressed || v.allocsRegressed {
		t.Fatalf("A should pass: %+v", v)
	}
	if v := byName["B"]; !v.nsRegressed || v.allocsRegressed {
		t.Fatalf("B should be an ns regression: %+v", v)
	}
	if v := byName["C"]; !v.allocsRegressed || v.nsRegressed {
		t.Fatalf("C should be an allocs regression: %+v", v)
	}
	if v := byName["D"]; !v.newBench {
		t.Fatalf("D should be new: %+v", v)
	}
	// With the ns check disabled, only C regresses.
	vs = compare(base, cur, 0, 0)
	for _, v := range vs {
		if v.nsRegressed {
			t.Fatalf("ns check disabled but %s regressed on ns", v.name)
		}
	}
	// The floor exempts timer-noise benchmarks from the ns check: B's
	// baseline (100 ns) sits below a 200 ns floor, so its 2x+ excursion
	// passes, while its allocs would still be enforced.
	vs = compare(base, cur, 2.0, 200)
	for _, v := range vs {
		if v.nsRegressed {
			t.Fatalf("ns floor 200 should exempt %s", v.name)
		}
	}
	if v := func() verdict {
		for _, v := range vs {
			if v.name == "C" {
				return v
			}
		}
		return verdict{}
	}(); !v.allocsRegressed {
		t.Fatal("allocs check must survive the ns floor")
	}
}

// writeBaseline writes a baseline file carrying both a foreign section (the
// benchrunner report, which must survive) and a benchmarks section.
func writeBaseline(t *testing.T, dir, benchmarks string) string {
	t.Helper()
	path := filepath.Join(dir, "BENCH_baseline.json")
	content := `{"host":{"num_cpu":1},"scale":"quick","benchmarks":` + benchmarks + `}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsOnInjectedAllocRegression is the acceptance check: an
// artificially injected allocs/op increase must fail the gate (exit 1),
// while the clean run passes (exit 0).
func TestGateFailsOnInjectedAllocRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir,
		`{"BenchmarkFusedKernels/IntersectCount":{"ns_op":6000,"allocs_op":0},`+
			`"BenchmarkFusedKernels/Cursor/QP":{"ns_op":6000,"allocs_op":1}}`)

	clean := filepath.Join(dir, "clean.txt")
	os.WriteFile(clean, []byte(plainBench), 0o644)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-bench", clean}, &out, &errb); code != 0 {
		t.Fatalf("clean run exited %d: %s%s", code, out.String(), errb.String())
	}

	// Inject: QP now does 2 allocs/op instead of 1.
	injected := strings.Replace(plainBench, "2312 B/op\t       1 allocs/op", "2312 B/op\t       2 allocs/op", 1)
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte(injected), 0o644)
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "-bench", bad}, &out, &errb); code != 1 {
		t.Fatalf("injected allocs regression exited %d, want 1: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (allocs/op)") {
		t.Fatalf("verdict table missing the allocs regression:\n%s", out.String())
	}

	// Inject: IntersectCount 3x slower — ns/op beyond the 2x tolerance.
	slow := strings.Replace(plainBench, "6567 ns/op", "19000 ns/op", 1)
	slowPath := filepath.Join(dir, "slow.txt")
	os.WriteFile(slowPath, []byte(slow), 0o644)
	if code := run([]string{"-baseline", baseline, "-bench", slowPath}, io.Discard, io.Discard); code != 1 {
		t.Fatalf("ns regression exited %d, want 1", code)
	}
	// ...which the -ns-tolerance 0 escape hatch waves through.
	if code := run([]string{"-baseline", baseline, "-bench", slowPath, "-ns-tolerance", "0"}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("ns check disabled but gate failed")
	}
}

// TestUpdateRewritesBaselinePreservingReport checks -update records the new
// numbers without clobbering the benchrunner report keys.
func TestUpdateRewritesBaselinePreservingReport(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir, `{}`)
	bench := filepath.Join(dir, "bench.txt")
	os.WriteFile(bench, []byte(plainBench), 0o644)
	if code := run([]string{"-baseline", baseline, "-bench", bench, "-update"}, io.Discard, io.Discard); code != 0 {
		t.Fatal("update failed")
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"num_cpu": 1`, `"scale": "quick"`, `"BenchmarkFusedKernels/IntersectCount"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("updated baseline missing %q:\n%s", want, s)
		}
	}
	// And the refreshed baseline passes against its own input.
	if code := run([]string{"-baseline", baseline, "-bench", bench}, io.Discard, io.Discard); code != 0 {
		t.Fatal("self-comparison after -update failed")
	}
}
