// Command benchdiff is the CI bench-regression gate: it compares a `go test
// -bench -benchmem` run against the benchmarks section of
// BENCH_baseline.json and fails on regressions.
//
// Two signals, two policies:
//
//   - allocs/op is noise-free even on shared CI runners — any increase over
//     the baseline fails the gate, no tolerance;
//   - ns/op is noisy (shared runners, different CPUs), so it only fails
//     beyond a generous multiplicative tolerance (default 2x), and can be
//     disabled outright with -ns-tolerance 0.
//
// The current run is read from a file or stdin, as either plain `go test
// -bench` text or a `go test -json` (test2json) stream — whatever CI tee'd
// into its artifact. Benchmark names are compared with the trailing
// -GOMAXPROCS suffix stripped, so a 4-core runner matches a 1-core
// baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFusedKernels' -benchtime 100x -benchmem . | benchdiff -baseline BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json -bench bench-smoke.json
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -update   # refresh the baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's recorded numbers. NsOp is negative when
// the benchmark emitted no ns/op line (custom-metric-only sub-benchmarks).
type BenchResult struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// baselineFile mirrors the parts of BENCH_baseline.json this tool touches;
// Rest preserves everything else (the benchrunner report) across -update.
type baselineFile struct {
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	Rest       map[string]json.RawMessage
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends on
// multi-core machines (Benchmark/sub-8 → Benchmark/sub).
var procSuffix = regexp.MustCompile(`-\d+$`)

func stripProcs(name string) string { return procSuffix.ReplaceAllString(name, "") }

// benchLine matches one benchmark result line: name, iterations, then
// "value unit" pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// benchCont matches a result line with the name elided — what test2json
// emits for benchmarks since the stream attributes the line to a Test field
// instead: just "iterations value unit ...".
var benchCont = regexp.MustCompile(`^(\d+)\s+(.+)$`)

// parseBenchOutput extracts benchmark results from plain -bench output.
// Lines that are not benchmark results are ignored.
func parseBenchOutput(r io.Reader) (map[string]BenchResult, error) {
	out := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	testJSON := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			// A test2json stream: unwrap the Output events and parse those.
			testJSON = true
		}
		var evTest string
		if testJSON {
			var ev struct {
				Action string `json:"Action"`
				Test   string `json:"Test"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue
			}
			if ev.Action != "output" {
				continue
			}
			evTest = ev.Test
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		var name, values string
		if m := benchLine.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			name, values = m[1], m[3]
		} else if strings.HasPrefix(evTest, "Benchmark") {
			// test2json splits the name from the numbers: the event's Test
			// field carries the benchmark, the output line starts at the
			// iteration count.
			m := benchCont.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			name, values = evTest, m[2]
		} else {
			continue
		}
		name = stripProcs(name)
		res := BenchResult{NsOp: -1, AllocsOp: -1}
		fields := strings.Fields(values)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = int64(v)
			}
		}
		if res.NsOp < 0 && res.AllocsOp < 0 {
			continue // nothing comparable on this line
		}
		out[name] = res
	}
	return out, sc.Err()
}

// loadBaseline reads the baseline file, preserving unknown top-level keys.
func loadBaseline(path string) (*baselineFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rest map[string]json.RawMessage
	if err := json.Unmarshal(raw, &rest); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	bf := &baselineFile{Benchmarks: make(map[string]BenchResult), Rest: rest}
	if b, ok := rest["benchmarks"]; ok {
		if err := json.Unmarshal(b, &bf.Benchmarks); err != nil {
			return nil, fmt.Errorf("parsing benchmarks of %s: %w", path, err)
		}
		delete(rest, "benchmarks")
	}
	return bf, nil
}

// saveBaseline writes the baseline back with the benchmarks section
// replaced, leaving the benchrunner report keys untouched.
func saveBaseline(path string, bf *baselineFile) error {
	full := make(map[string]any, len(bf.Rest)+1)
	for k, v := range bf.Rest {
		full[k] = v
	}
	full[`benchmarks`] = bf.Benchmarks
	out, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// verdict is one benchmark's comparison outcome.
type verdict struct {
	name            string
	base, cur       BenchResult
	nsRegressed     bool
	allocsRegressed bool
	newBench        bool
}

// compare evaluates current against the baseline. nsTolerance <= 0 disables
// the ns/op check; benchmarks whose baseline ns/op is below nsFloor are
// exempt from it too — a sub-100ns measurement at a bounded -benchtime is
// timer-noise territory, where a scheduling hiccup alone can double the
// reading (allocs/op still applies to them: allocation counts don't jitter).
func compare(baseline, current map[string]BenchResult, nsTolerance, nsFloor float64) []verdict {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]verdict, 0, len(names))
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		v := verdict{name: name, base: base, cur: cur, newBench: !ok}
		if ok {
			if base.AllocsOp >= 0 && cur.AllocsOp > base.AllocsOp {
				v.allocsRegressed = true
			}
			if nsTolerance > 0 && base.NsOp >= nsFloor && cur.NsOp > base.NsOp*nsTolerance {
				v.nsRegressed = true
			}
		}
		out = append(out, v)
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline file with a benchmarks section")
		benchPath    = fs.String("bench", "-", "current bench output: plain `go test -bench` text or a test2json stream (- = stdin)")
		nsTolerance  = fs.Float64("ns-tolerance", 2.0, "fail when ns/op exceeds baseline by this factor (0 disables the ns/op check)")
		nsFloor      = fs.Float64("ns-floor", 100, "exempt benchmarks whose baseline ns/op is below this from the ns/op check (timer noise; allocs/op still applies)")
		update       = fs.Bool("update", false, "write the current results into the baseline's benchmarks section instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results found in the input")
		return 2
	}
	bf, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	if *update {
		bf.Benchmarks = current
		if err := saveBaseline(*baselinePath, bf); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: recorded %d benchmarks into %s\n", len(current), *baselinePath)
		return 0
	}
	if len(bf.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "benchdiff: %s has no benchmarks section (run with -update to record one)\n", *baselinePath)
		return 2
	}

	verdicts := compare(bf.Benchmarks, current, *nsTolerance, *nsFloor)
	regressions := 0
	fmt.Fprintf(stdout, "%-68s %12s %12s %8s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "base al", "cur al", "verdict")
	for _, v := range verdicts {
		status := "ok"
		switch {
		case v.newBench:
			status = "new (no baseline)"
		case v.allocsRegressed && v.nsRegressed:
			status = "REGRESSION (allocs/op + ns/op)"
		case v.allocsRegressed:
			status = "REGRESSION (allocs/op)"
		case v.nsRegressed:
			status = fmt.Sprintf("REGRESSION (ns/op > %.1fx)", *nsTolerance)
		}
		if v.allocsRegressed || v.nsRegressed {
			regressions++
		}
		fmt.Fprintf(stdout, "%-68s %12.1f %12.1f %8d %8d  %s\n", v.name, v.base.NsOp, v.cur.NsOp, v.base.AllocsOp, v.cur.AllocsOp, status)
	}
	missing := 0
	for name := range bf.Benchmarks {
		if _, ok := current[name]; !ok {
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d baseline benchmarks absent from this run (not an error)\n", missing)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) against %s\n", regressions, *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within budget\n", len(verdicts))
	return 0
}
