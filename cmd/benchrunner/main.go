// Command benchrunner regenerates the paper's evaluation artifacts: every
// table and figure of §5, printed as aligned text or markdown.
//
// Usage:
//
//	benchrunner -exp all            # everything, quick scale
//	benchrunner -exp fig12 -scale full
//	benchrunner -exp table3 -format markdown -o table3.md
//
// Scales: quick (reduced cardinalities, minutes), full (Table 2 sizes,
// Zillow capped at 50K — see DESIGN.md), tiny (smoke test, seconds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment: all, fig10, fig11, table3, fig12, table4, fig13..fig18, ablation, parallel")
		scale   = fs.String("scale", "quick", "scale: quick, full, tiny")
		format  = fs.String("format", "text", "output format: text, markdown")
		out     = fs.String("o", "", "output file (default stdout)")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("workers", 0, "worker count for the parallel experiment (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", s.Name, s.Paper)
		}
		return 0
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(stderr, "benchrunner:", err)
		return 2
	}

	var specs []experiments.Spec
	if *exp == "all" {
		specs = experiments.All()
	} else {
		spec, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(stderr, "benchrunner: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		specs = []experiments.Spec{spec}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchrunner:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	for _, spec := range specs {
		fmt.Fprintf(stderr, "benchrunner: running %s (%s scale)...\n", spec.Name, sc)
		start := time.Now()
		var tables []experiments.Table
		if spec.Name == "parallel" {
			// The only experiment parameterized beyond scale: honour -workers.
			tables = experiments.ParallelSweep(sc, *workers)
		} else {
			tables = spec.Run(sc)
		}
		fmt.Fprintf(stderr, "benchrunner: %s done in %.1fs\n", spec.Name, time.Since(start).Seconds())
		for _, t := range tables {
			if *format == "markdown" {
				t.Markdown(w)
			} else {
				t.Format(w)
			}
		}
	}
	return 0
}
