// Command benchrunner regenerates the paper's evaluation artifacts: every
// table and figure of §5, printed as aligned text or markdown.
//
// Usage:
//
//	benchrunner -exp all            # everything, quick scale
//	benchrunner -exp fig12 -scale full
//	benchrunner -exp table3 -format markdown -o table3.md
//
// Scales: quick (reduced cardinalities, minutes), full (Table 2 sizes,
// Zillow capped at 50K — see DESIGN.md), tiny (smoke test, seconds).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// hostInfo records where a benchmark ran. Parallel speedups are meaningless
// without it: a container pinned to one core shows 1x no matter how good the
// engine is, so every emitted JSON carries the core count and GOMAXPROCS
// alongside the numbers.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

func currentHost() hostInfo {
	h := hostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}

// benchExperiment is one experiment's results in the JSON report.
type benchExperiment struct {
	Name    string              `json:"name"`
	Paper   string              `json:"paper"`
	Seconds float64             `json:"seconds"`
	Tables  []experiments.Table `json:"tables"`
}

// benchReport is the -json output: host context plus every table produced.
// Shards stamps the serve experiment's topology next to NumCPU/GOMAXPROCS —
// a per-shard p99 is only interpretable knowing how many shards (and cores)
// the run had.
type benchReport struct {
	Host        hostInfo          `json:"host"`
	Scale       string            `json:"scale"`
	Workers     int               `json:"workers,omitempty"`
	Shards      int               `json:"shards,omitempty"`
	Experiments []benchExperiment `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment: all, fig10, fig11, table3, fig12, table4, fig13..fig18, ablation, parallel, serve, kill")
		scale   = fs.String("scale", "quick", "scale: quick, full, tiny")
		format  = fs.String("format", "text", "output format: text, markdown")
		out     = fs.String("o", "", "output file (default stdout)")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("workers", 0, "worker count for the parallel experiment (0 = GOMAXPROCS)")
		shards  = fs.Int("shards", 1, "shard count for the serve experiment (1 = unsharded)")
		chaos   = fs.Bool("chaos", false, "run the serve experiment as a fault-injection soak: replicated remote shards behind a transport injecting seeded errors/timeouts/stale responses; answers must stay byte-identical")
		seed    = fs.Uint64("seed", 1, "fault-schedule seed for -chaos and the kill experiment")
		jsonOut = fs.String("json", "", "also write results as JSON with host/runtime info to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", s.Name, s.Paper)
		}
		return 0
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(stderr, "benchrunner:", err)
		return 2
	}

	var specs []experiments.Spec
	if *exp == "all" {
		specs = experiments.All()
	} else {
		spec, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(stderr, "benchrunner: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		specs = []experiments.Spec{spec}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchrunner:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	report := benchReport{Host: currentHost(), Scale: sc.String(), Workers: *workers, Shards: *shards}
	for _, spec := range specs {
		fmt.Fprintf(stderr, "benchrunner: running %s (%s scale)...\n", spec.Name, sc)
		start := time.Now()
		var tables []experiments.Table
		switch spec.Name {
		case "parallel":
			// Parameterized beyond scale: honour -workers.
			tables = experiments.ParallelSweep(sc, *workers)
		case "serve":
			// Honour -shards; the report row carries the per-shard p99.
			// -chaos swaps in the fault-injection soak over replicated
			// remote shards.
			if *chaos {
				tables = experiments.ServeChaos(sc, *shards, *seed)
			} else {
				tables = experiments.ServeSharded(sc, *shards)
			}
		case "kill":
			// Honour -seed: the kill schedule is deterministic per seed, so a
			// CI matrix over seeds varies where the SIGKILL lands.
			tables = experiments.KillLoad(sc, *seed)
		default:
			tables = spec.Run(sc)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stderr, "benchrunner: %s done in %.1fs\n", spec.Name, elapsed.Seconds())
		report.Experiments = append(report.Experiments, benchExperiment{
			Name:    spec.Name,
			Paper:   spec.Paper,
			Seconds: elapsed.Seconds(),
			Tables:  tables,
		})
		for _, t := range tables {
			if *format == "markdown" {
				t.Markdown(w)
			} else {
				t.Format(w)
			}
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(stderr, "benchrunner:", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "benchrunner:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchrunner:", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchrunner: wrote JSON report to %s\n", *jsonOut)
	}
	return 0
}
