package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig10", "table3", "fig18"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output lacks %s:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentTiny(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "tiny"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 3") {
		t.Fatalf("no table emitted:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "running table3") {
		t.Fatalf("no progress log:\n%s", errb.String())
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-format", "markdown"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "| --- |") {
		t.Fatalf("not markdown:\n%s", out.String())
	}
}

// TestRunJSONReport checks the -json output: host/runtime context (core
// count, GOMAXPROCS — without which parallel numbers are uninterpretable)
// plus the experiment tables.
func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid JSON report: %v", err)
	}
	if report.Host.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", report.Host.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if report.Host.NumCPU != runtime.NumCPU() {
		t.Errorf("num_cpu = %d, want %d", report.Host.NumCPU, runtime.NumCPU())
	}
	if report.Host.GoVersion != runtime.Version() || report.Host.GOOS != runtime.GOOS {
		t.Errorf("host info = %+v", report.Host)
	}
	if report.Scale != "tiny" {
		t.Errorf("scale = %q, want tiny", report.Scale)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Name != "table3" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	if len(report.Experiments[0].Tables) == 0 || report.Experiments[0].Seconds < 0 {
		t.Errorf("experiment missing tables or timing: %+v", report.Experiments[0])
	}
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-json", "/no/such/dir/x.json"}, &out, &errb); code != 1 {
		t.Fatalf("bad -json path: exit %d", code)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-scale", "galactic"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale: exit %d", code)
	}
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-o", "/no/such/dir/x"}, &out, &errb); code != 1 {
		t.Fatalf("bad output path: exit %d", code)
	}
}
