package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig10", "table3", "fig18"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output lacks %s:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentTiny(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "tiny"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 3") {
		t.Fatalf("no table emitted:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "running table3") {
		t.Fatalf("no progress log:\n%s", errb.String())
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-format", "markdown"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "| --- |") {
		t.Fatalf("not markdown:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-scale", "galactic"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale: exit %d", code)
	}
	if code := run([]string{"-exp", "table3", "-scale", "tiny", "-o", "/no/such/dir/x"}, &out, &errb); code != 1 {
		t.Fatalf("bad output path: exit %d", code)
	}
}
