// Command datagen generates the paper's workloads as CSV files: synthetic
// IND/AC data with configurable cardinality, dimensionality, domain size and
// missing rate, plus the MovieLens/NBA/Zillow simulators.
//
// Usage:
//
//	datagen -dist ind -n 100000 -dim 10 -c 200 -sigma 0.1 -o ind.csv
//	datagen -dist nba -o nba.csv
//	datagen -dist zillow -n 20000 -o zillow.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/data"
	"repro/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dist  = fs.String("dist", "ind", "distribution: ind, ac, movielens, nba, zillow")
		n     = fs.Int("n", 100_000, "cardinality (ind/ac/zillow)")
		dim   = fs.Int("dim", 10, "dimensionality (ind/ac)")
		card  = fs.Int("c", 200, "distinct values per dimension (ind/ac)")
		sigma = fs.Float64("sigma", 0.10, "missing rate (ind/ac)")
		seed  = fs.Int64("seed", 1, "random seed")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var ds *data.Dataset
	switch *dist {
	case "ind":
		ds = gen.Synthetic(gen.Config{N: *n, Dim: *dim, Cardinality: *card, MissingRate: *sigma, Dist: gen.IND, Seed: *seed})
	case "ac":
		ds = gen.Synthetic(gen.Config{N: *n, Dim: *dim, Cardinality: *card, MissingRate: *sigma, Dist: gen.AC, Seed: *seed})
	case "movielens":
		ds = gen.MovieLens(*seed)
	case "nba":
		ds = gen.NBA(*seed)
	case "zillow":
		ds = gen.Zillow(*seed, *n)
	default:
		fmt.Fprintf(stderr, "datagen: unknown distribution %q\n", *dist)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "datagen:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "datagen: wrote %d objects, %d dims, missing rate %.3f\n",
		ds.Len(), ds.Dim(), ds.MissingRate())
	return 0
}
