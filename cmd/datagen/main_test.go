package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
)

func TestRunGeneratesCSVToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dist", "ind", "-n", "50", "-dim", "3", "-c", "8", "-sigma", "0.2", "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	ds, err := data.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 50 || ds.Dim() != 3 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dim())
	}
	if !strings.Contains(errb.String(), "wrote 50 objects") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errb bytes.Buffer
	code := run([]string{"-dist", "ac", "-n", "20", "-dim", "2", "-c", "4", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := data.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Fatalf("Len = %d", ds.Len())
	}
}

func TestRunRealSimulators(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dist", "zillow", "-n", "30"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	ds, err := data.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != 5 {
		t.Fatalf("Zillow dim = %d", ds.Dim())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dist", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bogus dist: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{"-dist", "ind", "-n", "5", "-dim", "2", "-c", "3", "-o", "/nonexistent/dir/x.csv"}, &out, &errb); code != 1 {
		t.Fatalf("bad path: exit %d", code)
	}
}
