// Command tkdserver serves top-k dominating queries over multiple resident
// datasets through an HTTP/JSON API. Each dataset is loaded once (datagen
// CSV format), indexed once, and queried from warm indexes; concurrent
// queries against one dataset are coalesced into batch scheduling windows
// and the total worker fan-out is bounded by an admission controller.
//
// The dataset lifecycle is live: datasets can be registered, hot-reloaded
// (zero downtime — in-flight queries finish on the old epoch) and evicted
// through the /v1/datasets admin endpoints, and -indexdir persists built
// indexes so warm restarts and reloads of unchanged files skip the paper's
// dominant preprocessing cost. SIGINT/SIGTERM drain gracefully: queued
// scheduling windows finish, new queries get 503.
//
// One huge dataset can be split across processes: -shards N serves it
// through a scatter-gather coordinator (answers stay byte-identical to the
// unsharded dataset), and -peers hands the shards to remote tkdserver
// processes speaking the /v1/shard/query protocol — every tkdserver is a
// capable peer, no special mode required. Pipe-separating URLs within one
// -peers entry makes that shard a replica set: reads load-balance across
// the replicas with per-replica circuit breakers, retries with backoff,
// optional hedging, and background health probes (-health-interval) that
// quarantine divergent replicas. Per-query deadlines (-query-timeout or the
// request's timeout_millis) propagate through the scheduler into in-flight
// shard RPCs.
//
// Replica groups stay in lockstep without out-of-band dataset distribution:
// -follow http://leader:8080 starts a follower that discovers the leader's
// datasets, fetches each published epoch over GET /v1/datasets/{name}/epoch
// (data, fingerprint and — for unsharded leaders — the built index, in one
// validated stream) and publishes it locally under the leader's epoch
// number. A follower needs no -dataset flags; reloading the leader rolls
// every follower automatically.
//
// -waldir enables durable row ingest: POST /v1/datasets/{name}/append logs
// rows to a per-dataset write-ahead log before acking (-fsync sets what the
// ack means; "always" survives kill -9), folds them into published epochs at
// -publish-interval cadence, and replays acked-but-unpublished rows on
// restart. Reload and DELETE stay file-authoritative: both discard the WAL.
// Publishes are incremental by default (-delta-publish): a batch is folded
// into the previous epoch's index by column patching — O(batch) work,
// fingerprint-verified, answers byte-identical to a rebuild — and
// -delta-ship extends the same economy to replication: followers that
// advertise an epoch in the leader's append lineage receive only the rows
// appended since. Standing top-k subscriptions ride the same deltas: POST
// /v1/datasets/{name}/subscribe pushes a new answer (SSE or long-poll) only
// when a publish actually changed it.
//
// Usage:
//
//	tkdserver -dataset nba=nba.csv -dataset movies=movies.csv
//	tkdserver -addr :9000 -dataset d=data.csv -cache-budget 4194304 -indexdir /var/cache/tkd
//	tkdserver -dataset big=big.csv -shards 4                               # sharded in-process
//	tkdserver -dataset big=big.csv -shards 4 -peers http://p1:8080,http://p2:8080
//	tkdserver -dataset big=big.csv -shards 2 \
//	    -peers 'http://a:8080|http://b:8080,http://c:8080|http://d:8080' \
//	    -health-interval 5s -query-timeout 2s                              # replicated shards
//	tkdserver -addr :8081 -follow http://leader:8080                       # replication follower
//	tkdserver -dataset d=data.csv -waldir /var/lib/tkd/wal -fsync always   # durable ingest
//
// Endpoints: POST /v1/query, GET/POST /v1/datasets, POST
// /v1/datasets/{name}/append, POST /v1/datasets/{name}/reload, DELETE
// /v1/datasets/{name}, GET /healthz, GET /metrics. See the README's
// "Operating tkdserver" section for an example curl session and the
// metrics glossary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// datasetFlag collects repeated -dataset name=path mappings.
type datasetFlag []string

func (d *datasetFlag) String() string { return strings.Join(*d, ",") }

func (d *datasetFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tkdserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var datasets datasetFlag
	fs.Var(&datasets, "dataset", "name=path of a datagen-format CSV to serve (repeatable)")
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		negate      = fs.Bool("negate", false, "negate loaded values (use when larger is better)")
		window      = fs.Duration("window", 2*time.Millisecond, "batch coalescing window (0 = serve immediately)")
		maxWorkers  = fs.Int("max-workers", 0, "total in-flight worker goroutines across queries (0 = GOMAXPROCS)")
		maxBatch    = fs.Int("max-batch", 64, "max queries per scheduling window")
		cacheBudget = fs.Int64("cache-budget", 0, "per-dataset decompressed-column cache bytes (0 = 32 MiB default)")
		indexDir    = fs.String("indexdir", "", "directory for persisted indexes; warm restarts skip index construction (empty = rebuild at boot)")
		drainWait   = fs.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight requests on SIGTERM/SIGINT")
		shards      = fs.Int("shards", 1, "split each dataset into N row-range shards behind a scatter-gather coordinator (1 = unsharded; answers are byte-identical either way)")
		peersFlag   = fs.String("peers", "", "comma-separated base URLs of tkdserver peers that serve the shards remotely (requires -shards > 1; peers must serve the same -dataset mappings; pipe-separate replicas within an entry, e.g. http://a:8080|http://b:8080)")
		peerTimeout = fs.Duration("peer-timeout", 30*time.Second, "per-request timeout for shard-peer round trips")
		queryTO     = fs.Duration("query-timeout", 0, "default per-query deadline when the request carries no timeout_millis (0 = none)")
		healthIvl   = fs.Duration("health-interval", 0, "period of the background replica health probes; divergent replicas are quarantined (0 = disabled)")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
		slowQuery   = fs.Duration("slow-query", 0, "log queries slower than this at warn level with their trace ID (0 = disabled; the /v1/debug/queries ring is always on)")
		debugAddr   = fs.String("debug-addr", "", "separate listen address for the net/http/pprof profiling endpoints (empty = pprof not served; keep this off any public interface)")
		follow      = fs.String("follow", "", "base URL of a leader tkdserver to follow: its datasets are discovered, fetched over the epoch stream endpoint and kept in lockstep through every reload (a follower needs no -dataset flags of its own)")
		followIvl   = fs.Duration("follow-interval", 2*time.Second, "leader poll period in follower mode (polls are conditional and cheap)")
		walDir      = fs.String("waldir", "", "directory for per-dataset write-ahead logs: enables POST /v1/datasets/{name}/append with crash recovery (empty = ingest disabled; ignored with -shards > 1 or -follow)")
		fsyncPolicy = fs.String("fsync", "always", "when an append's WAL record is fsynced: always (ack = on disk), interval (ack = logged, fsynced on -fsync-interval), none (ack = handed to the OS)")
		fsyncIvl    = fs.Duration("fsync-interval", 50*time.Millisecond, "WAL flush cadence under -fsync interval (a crash loses at most one interval of acked rows)")
		publishIvl  = fs.Duration("publish-interval", 500*time.Millisecond, "cadence at which logged rows are folded into a published epoch (one index rebuild per batch)")
		deltaPub    = fs.Bool("delta-publish", true, "fold WAL batches into the previous epoch's index by column patching instead of rebuilding — O(batch), fingerprint-verified, byte-identical answers (false = rebuild every publish)")
		deltaShip   = fs.Bool("delta-ship", true, "answer followers that advertise a lineage-covered epoch with just the rows appended since, instead of the full epoch stream")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(datasets) == 0 && *follow == "" {
		fmt.Fprintln(stderr, "tkdserver: at least one -dataset name=path is required (or -follow a leader)")
		fs.PrintDefaults()
		return 2
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stdout, nil)
	case "json":
		handler = slog.NewJSONHandler(stdout, nil)
	default:
		fmt.Fprintf(stderr, "tkdserver: -log-format must be text or json, got %q\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	if len(peers) > 0 && *shards <= 1 {
		fmt.Fprintln(stderr, "tkdserver: -peers requires -shards > 1")
		return 2
	}
	fsync, err := wal.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintln(stderr, "tkdserver:", err)
		return 2
	}

	srv, err := buildServer(datasets, *negate, server.Config{
		MaxWorkers:      *maxWorkers,
		BatchWindow:     *window,
		MaxBatch:        *maxBatch,
		CacheBudget:     *cacheBudget,
		IndexDir:        *indexDir,
		Shards:          *shards,
		ShardPeers:      peers,
		PeerTimeout:     *peerTimeout,
		QueryTimeout:    *queryTO,
		HealthInterval:  *healthIvl,
		Logger:          logger,
		SlowQuery:       *slowQuery,
		Follow:          *follow,
		FollowInterval:  *followIvl,
		WALDir:          *walDir,
		Fsync:           fsync,
		FsyncInterval:   *fsyncIvl,
		PublishInterval: *publishIvl,
		DeltaPublish:    *deltaPub,
		DeltaShip:       *deltaShip,
	}, logger)
	if err != nil {
		fmt.Fprintln(stderr, "tkdserver:", err)
		return 1
	}
	defer srv.Close()

	// The pprof endpoints go on their own listener, only when asked for:
	// profiling data (heap contents, CPU samples) has no business on the
	// query port.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(stderr, "tkdserver:", err)
			return 1
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: dmux}
		defer dsrv.Close()
		go func() { _ = dsrv.Serve(dln) }()
		logger.Info("pprof listening", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "tkdserver:", err)
		return 1
	}
	logger.Info("listening", "addr", ln.Addr().String())

	// Serve until a termination signal, then drain: the query service stops
	// accepting (503) and finishes every queued scheduling window before
	// the HTTP server closes its connections — SIGTERM never drops work
	// that was already accepted.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "tkdserver:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	// Restore default signal handling immediately: a second SIGINT/SIGTERM
	// during a slow drain kills the process instead of being swallowed.
	stop()
	logger.Info("draining", "reason", "signal received")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Drain the schedulers (refuse new queries, finish queued windows)
	// under the same deadline that bounds the HTTP teardown.
	drained := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(drained)
	}()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		logger.Warn("drain timeout; abandoning queued work")
		srv.Close()
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("forced close", "err", err)
		_ = httpSrv.Close()
	}
	logger.Info("drained, bye")
	return 0
}

// buildServer loads every -dataset mapping into a fresh server, logging each
// load (index construction dominates startup when no persisted index is
// available, so the feedback matters).
func buildServer(datasets []string, negate bool, cfg server.Config, logger *slog.Logger) (*server.Server, error) {
	srv := server.New(cfg)
	for _, spec := range datasets {
		name, path, _ := strings.Cut(spec, "=")
		if name == "" || path == "" {
			srv.Close()
			return nil, fmt.Errorf("bad -dataset %q: want name=path", spec)
		}
		start := time.Now()
		if err := srv.LoadCSVFile(name, path, negate); err != nil {
			srv.Close()
			return nil, err
		}
		logger.Info("dataset loaded", "dataset", name, "path", path, "seconds", time.Since(start).Seconds())
	}
	return srv, nil
}
