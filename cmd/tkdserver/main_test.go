package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/tkd"
)

// bufLogger is a text-format slog.Logger writing into out, mirroring what
// run() builds for -log-format text.
func bufLogger(out io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(out, nil))
}

// writeTempCSV materializes a generated dataset as a datagen-format CSV.
func writeTempCSV(t *testing.T, ds *tkd.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildServerServesLoadedCSV boots the server exactly as run() does and
// drives one query through the HTTP stack, checking the answer against the
// library on the same data.
func TestBuildServerServesLoadedCSV(t *testing.T) {
	ds := tkd.GenerateIND(300, 4, 20, 0.2, 5)
	path := writeTempCSV(t, ds)
	var out bytes.Buffer
	srv, err := buildServer([]string{"d1=" + path}, false, server.Config{}, bufLogger(&out))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(out.String(), "dataset loaded") || !strings.Contains(out.String(), "dataset=d1") {
		t.Fatalf("no load log:\n%s", out.String())
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := strings.NewReader(`{"dataset":"d1","k":5,"algorithm":"IBIG"}`)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	want, err := ds.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Items) != len(want.Items) {
		t.Fatalf("%d items, want %d", len(qr.Items), len(want.Items))
	}
	for i, it := range qr.Items {
		if it.ID != want.Items[i].ID || it.Score != want.Items[i].Score {
			t.Fatalf("item %d = %+v, want %+v", i, it, want.Items[i])
		}
	}
}

// TestIndexDirWarmRestart boots twice with -indexdir semantics: the second
// buildServer over the same CSV must warm-load the persisted index (zero
// rebuilds, visible on /metrics) and serve identical answers.
func TestIndexDirWarmRestart(t *testing.T) {
	ds := tkd.GenerateIND(400, 4, 25, 0.2, 8)
	path := writeTempCSV(t, ds)
	ixdir := filepath.Join(t.TempDir(), "ix")
	cfg := server.Config{IndexDir: ixdir}

	srv1, err := buildServer([]string{"d=" + path}, false, cfg, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	var out bytes.Buffer
	srv2, err := buildServer([]string{"d=" + path}, false, cfg, bufLogger(&out))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts := httptest.NewServer(srv2)
	defer ts.Close()
	metrics := getURL(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "tkd_index_warm_loads_total 1") {
		t.Errorf("warm restart did not load the persisted index:\n%s", grepLine(metrics, "tkd_index_"))
	}
	if !strings.Contains(metrics, "tkd_index_builds_total 0") {
		t.Errorf("warm restart rebuilt the index:\n%s", grepLine(metrics, "tkd_index_"))
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"dataset":"d","k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	want, err := ds.TopK(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range qr.Items {
		if it.ID != want.Items[i].ID || it.Score != want.Items[i].Score {
			t.Fatalf("warm answer item %d = %+v, want %+v", i, it, want.Items[i])
		}
	}
}

func getURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func grepLine(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("no datasets: exit %d", code)
	}
	if code := run([]string{"-dataset", "nopath"}, &out, &errb); code != 2 {
		t.Fatalf("malformed -dataset: exit %d", code)
	}
	if code := run([]string{"-dataset", "x=/no/such/file.csv"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}

func TestBuildServerRejectsEmptyName(t *testing.T) {
	ds := tkd.GenerateIND(50, 3, 10, 0.1, 1)
	path := writeTempCSV(t, ds)
	var out bytes.Buffer
	if _, err := buildServer([]string{"=" + path}, false, server.Config{}, bufLogger(&out)); err == nil {
		t.Fatal("empty dataset name accepted")
	}
}
