// End-to-end integration tests across module boundaries: generator → CSV →
// loader → preprocessing → every query algorithm, exercised through both
// the public API and the internal packages.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/bitmapidx"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gen"
	"repro/tkd"
)

// TestPipelineCSVRoundTripAllAlgorithms generates a workload, pushes it
// through the CSV serializer and loader, and checks that every algorithm
// returns the same score multiset on the original and the reloaded data.
func TestPipelineCSVRoundTripAllAlgorithms(t *testing.T) {
	orig := gen.Synthetic(gen.Config{N: 600, Dim: 5, Cardinality: 24, MissingRate: 0.3, Dist: gen.AC, Seed: 71})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := data.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	preA := core.Preprocess(orig, nil)
	preB := core.Preprocess(loaded, nil)
	for _, alg := range core.Algorithms {
		a, _ := core.Run(alg, orig, 12, preA)
		b, _ := core.Run(alg, loaded, 12, preB)
		as, bs := a.Scores(), b.Scores()
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("%v: scores diverge after CSV round trip: %v vs %v", alg, as, bs)
			}
		}
	}
}

// TestPreSharingAcrossQueries: one preprocessing artifact set must serve
// many queries (different k, different algorithms) without contamination.
func TestPreSharingAcrossQueries(t *testing.T) {
	ds := gen.Synthetic(gen.Config{N: 800, Dim: 4, Cardinality: 16, MissingRate: 0.2, Dist: gen.IND, Seed: 72})
	shared := core.Preprocess(ds, nil)
	for _, k := range []int{2, 16, 64, 3, 1} { // deliberately non-monotone
		fresh, _ := core.Run(core.AlgIBIG, ds, k, core.Preprocess(ds, nil))
		reused, _ := core.Run(core.AlgIBIG, ds, k, shared)
		fs, rs := fresh.Scores(), reused.Scores()
		for i := range fs {
			if fs[i] != rs[i] {
				t.Fatalf("k=%d: shared pre gave %v, fresh %v", k, rs, fs)
			}
		}
	}
}

// TestPublicAndInternalAgree: the tkd facade and the internal core must
// produce identical answers on the same generated data.
func TestPublicAndInternalAgree(t *testing.T) {
	pub := tkd.GenerateIND(500, 4, 20, 0.25, 73)
	var buf bytes.Buffer
	if err := pub.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	internal, err := data.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pubRes, err := pub.TopK(10, tkd.WithAlgorithm(tkd.BIG))
	if err != nil {
		t.Fatal(err)
	}
	intRes, _ := core.Run(core.AlgBIG, internal, 10, nil)
	ps, is := pubRes.Scores(), intRes.Scores()
	for i := range ps {
		if ps[i] != is[i] {
			t.Fatalf("facade %v vs internal %v", ps, is)
		}
	}
}

// TestTKDAnswerWithinKSkyband: every answer of a TKD query with score > 0
// need NOT be in the skyline (dominance is not transitive), but the top-1
// answer is always within the N-skyband and the result sets are internally
// consistent: answers are returned in non-increasing score order and every
// reported score is exact.
func TestTKDAnswerConsistencyOnRealShapes(t *testing.T) {
	for _, ds := range []*data.Dataset{
		gen.Zillow(74, 1500),
		gen.NBA(75),
	} {
		small := ds
		if small.Len() > 2000 {
			sub := data.New(ds.Dim())
			for i := 0; i < ds.Len(); i += ds.Len() / 2000 {
				o := ds.Obj(i)
				sub.MustAppend(o.ID, o.Values)
			}
			small = sub
		}
		pre := core.Preprocess(small, nil)
		res, _ := core.Run(core.AlgIBIG, small, 8, pre)
		prev := int(^uint(0) >> 1)
		for _, it := range res.Items {
			if it.Score > prev {
				t.Fatal("scores not non-increasing")
			}
			prev = it.Score
			if want := core.Score(small, it.Index); want != it.Score {
				t.Fatalf("reported score %d, exact %d", it.Score, want)
			}
		}
	}
}

// TestWAHBackedIndexEndToEnd runs the full IBIG pipeline over a WAH-coded
// index (the codec the paper rejected — it must still be correct).
func TestWAHBackedIndexEndToEnd(t *testing.T) {
	ds := gen.Synthetic(gen.Config{N: 400, Dim: 4, Cardinality: 12, MissingRate: 0.3, Dist: gen.IND, Seed: 76})
	queue := core.BuildMaxScoreQueue(ds)
	wahIx := bitmapidx.Build(ds, bitmapidx.Options{Codec: bitmapidx.WAH, Bins: []int{6}})
	want, _ := core.Naive(ds, 9)
	got, _ := core.IBIG(ds, 9, wahIx, queue)
	ws, gs := want.Scores(), got.Scores()
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("WAH-backed IBIG: %v, want %v", gs, ws)
		}
	}
}
